"""SweepJournal: binding, torn entries, and resume-equals-cold sweeps."""

from __future__ import annotations

import pytest
from chaos_tools import attempts, chaos_scenario

from repro.errors import SimulationError
from repro.runtime import SweepJournal
from repro.scenario import SweepCache, run_sweep


class TestJournalUnit:
    def test_fresh_bind_returns_empty_and_round_trips(self, tmp_path):
        journal = SweepJournal(tmp_path / "j")
        assert journal.bind("fp-1", 3) == {}
        assert journal.record(0, {"v": 1.5})
        assert journal.record(2, ("a", (1, 2)))
        assert len(journal) == 2
        resumed = SweepJournal(tmp_path / "j")
        assert resumed.bind("fp-1", 3) == {0: {"v": 1.5}, 2: ("a", (1, 2))}

    def test_record_requires_bind(self, tmp_path):
        journal = SweepJournal(tmp_path / "j")
        with pytest.raises(SimulationError, match="bound"):
            journal.record(0, 1)

    def test_fingerprint_mismatch_resets(self, tmp_path):
        journal = SweepJournal(tmp_path / "j")
        journal.bind("fp-1", 2)
        journal.record(0, "stale")
        other = SweepJournal(tmp_path / "j")
        assert other.bind("fp-2", 2) == {}  # different sweep: wiped
        assert len(other) == 0

    def test_n_items_mismatch_resets(self, tmp_path):
        journal = SweepJournal(tmp_path / "j")
        journal.bind("fp-1", 2)
        journal.record(1, "stale")
        assert SweepJournal(tmp_path / "j").bind("fp-1", 5) == {}

    def test_torn_entry_is_dropped_individually(self, tmp_path):
        journal = SweepJournal(tmp_path / "j")
        journal.bind("fp-1", 3)
        journal.record(0, "keep")
        journal.record(1, "tear")
        (tmp_path / "j" / "entry-000001.pkl").write_bytes(b"\x80garbage")
        assert SweepJournal(tmp_path / "j").bind("fp-1", 3) == {0: "keep"}

    def test_out_of_range_entries_are_ignored(self, tmp_path):
        journal = SweepJournal(tmp_path / "j")
        journal.bind("fp-1", 2)
        journal.record(0, "ok")
        journal.record(7, "beyond")  # e.g. a manifest hand-edit shrank the sweep
        assert SweepJournal(tmp_path / "j").bind("fp-1", 2) == {0: "ok"}

    def test_unpicklable_value_returns_false(self, tmp_path):
        journal = SweepJournal(tmp_path / "j")
        journal.bind("fp-1", 1)
        assert not journal.record(0, lambda: None)
        assert len(journal) == 0

    def test_clear_drops_entries_and_manifest(self, tmp_path):
        journal = SweepJournal(tmp_path / "j")
        journal.bind("fp-1", 1)
        journal.record(0, "x")
        journal.clear()
        assert len(journal) == 0
        assert not (tmp_path / "j" / "manifest.json").exists()
        with pytest.raises(SimulationError):
            journal.record(0, "x")  # clear() also unbinds


class TestSweepResume:
    def test_interrupted_sweep_resumes_bit_identical_to_cold_run(
        self, chaos_state, tmp_path, monkeypatch
    ):
        """Journal half a sweep, 'lose' the rest, resume: only the missing
        scenarios re-run, and the resumed ResultSet equals an uninterrupted
        cold run byte for byte."""
        grid = [chaos_scenario("raise", 0, f"s{i}", seed=20 + i) for i in range(4)]
        journal = SweepJournal(tmp_path / "journal")
        first = run_sweep(grid, journal=journal)
        assert len(journal) == 4
        assert all(attempts(f"s{i}") == 1 for i in range(4))

        # Simulate dying before entries 1 and 3 hit the disk.
        for index in (1, 3):
            (tmp_path / "journal" / f"entry-{index:06d}.pkl").unlink()

        resumed = run_sweep(grid, journal=SweepJournal(tmp_path / "journal"))
        assert [attempts(f"s{i}") for i in range(4)] == [1, 2, 1, 2]

        # Independent cold run (fresh counters, no journal) for comparison.
        monkeypatch.setenv("REPRO_CHAOS_STATE", str(tmp_path / "cold-state"))
        cold = run_sweep(grid)
        for f, r, c in zip(first, resumed, cold):
            assert f == r == c

    def test_journal_covers_scenarios_the_cache_cannot(self, chaos_state, tmp_path):
        """Numpy-scalar workload params make a scenario uncacheable
        (no canonical key); the journal persists it anyway, so a resume
        skips the re-run even though the cache missed."""
        import numpy as np

        s = chaos_scenario("raise", 0, "unkeyed").with_workload(
            "azure", n_vms=np.int64(40), seed=np.int64(7)
        )
        cache = SweepCache(tmp_path / "cache")
        journal = SweepJournal(tmp_path / "journal")
        run_sweep([s], cache=cache, journal=journal)
        assert len(cache) == 0 and cache.skipped >= 1  # the cache couldn't hold it
        assert len(journal) == 1 and attempts("unkeyed") == 1

        again = run_sweep([s], cache=SweepCache(tmp_path / "cache"), journal=journal)
        assert attempts("unkeyed") == 1  # served from the journal, not re-run
        assert len(again) == 1 and again[0].ok

    def test_rebinding_a_different_grid_resets_instead_of_leaking(
        self, chaos_state, tmp_path
    ):
        journal = SweepJournal(tmp_path / "journal")
        grid_a = [chaos_scenario("raise", 0, "a0"), chaos_scenario("raise", 0, "a1", seed=9)]
        run_sweep(grid_a, journal=journal)
        assert len(journal) == 2

        grid_b = [chaos_scenario("raise", 0, "b0", seed=11)]
        rs = run_sweep(grid_b, journal=SweepJournal(tmp_path / "journal"))
        assert attempts("b0") == 1  # grid B actually ran (nothing leaked)
        assert len(rs) == 1
        assert len(SweepJournal(tmp_path / "journal")) == 1
