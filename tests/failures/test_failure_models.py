"""Failure-model schedules: registration, determinism, validation."""

import numpy as np
import pytest

from repro.errors import SimulationError, UnknownComponentError
from repro.failures import ACTIONS, FailureEvent, FailureModel
from repro.registry import create, names
from repro.scenario import Scenario  # also triggers `failure`-kind registration

MODELS = (
    "spot",
    "correlated-spot",
    "exponential-lifetimes",
    "weibull-lifetimes",
    "preemption-windows",
    "capacity-dips",
    "elastic-pool",
    "trace-schedule",
)


def rng(seed=0):
    return np.random.default_rng(seed)


class TestRegistration:
    def test_all_models_registered(self):
        assert set(MODELS) <= set(names("failure"))

    def test_unknown_model_fails_loudly(self):
        with pytest.raises(UnknownComponentError, match="spot"):
            create("failure", "meteor-strike")

    def test_exponential_is_weibull_shape_one(self):
        model = create("failure", "exponential-lifetimes", mean_lifetime=100.0)
        assert model.shape == 1.0
        assert model.mean_lifetime == 100.0


class TestFailureEvent:
    def test_validates_action(self):
        with pytest.raises(SimulationError, match="unknown failure action"):
            FailureEvent(time=1.0, action="explode", server=0)
        assert "revoke" in ACTIONS and "dip" in ACTIONS

    def test_dip_needs_scale_and_duration(self):
        with pytest.raises(SimulationError, match="scale"):
            FailureEvent(time=1.0, action="dip", server=0, scale=1.5, duration=2.0)
        with pytest.raises(SimulationError, match="duration"):
            FailureEvent(time=1.0, action="dip", server=0, scale=0.5, duration=0.0)


@pytest.mark.parametrize("name", [m for m in MODELS if m != "trace-schedule"])
class TestDeterminism:
    def test_same_seed_same_schedule(self, name):
        model = create("failure", name)
        a = model.events(20, 500.0, rng(7))
        b = model.events(20, 500.0, rng(7))
        assert a == b

    def test_events_inside_cluster_and_horizon(self, name):
        model = create("failure", name)
        events = model.events(20, 500.0, rng(7))
        # Arrivals extend the addressable range past the initial cluster.
        n_total = 20 + sum(1 for ev in events if ev.action == "arrive")
        for ev in events:
            assert 0 <= ev.server < n_total
            assert 0.0 <= ev.time < 500.0


class TestSpot:
    def test_rate_scales_revocation_count(self):
        low = create("failure", "spot", rate=0.0005).events(50, 500.0, rng(3))
        high = create("failure", "spot", rate=0.01).events(50, 500.0, rng(3))
        assert len(high) > len(low)

    def test_each_server_revoked_at_most_once(self):
        events = create("failure", "spot", rate=0.05).events(30, 500.0, rng(5))
        servers = [ev.server for ev in events]
        assert len(servers) == len(set(servers))

    def test_fraction_limits_transient_pool(self):
        events = create("failure", "spot", rate=1.0, fraction=0.2).events(
            20, 5000.0, rng(1)
        )
        assert 0 < len({ev.server for ev in events}) <= 4

    def test_validation(self):
        with pytest.raises(SimulationError, match="rate"):
            create("failure", "spot", rate=0.0)
        with pytest.raises(SimulationError, match="fraction"):
            create("failure", "spot", fraction=1.5)


class TestLifetimes:
    def test_mean_lifetime_controls_survival(self):
        short = create("failure", "weibull-lifetimes", mean_lifetime=50.0)
        long = create("failure", "weibull-lifetimes", mean_lifetime=50_000.0)
        n_short = len(short.events(100, 500.0, rng(2)))
        n_long = len(long.events(100, 500.0, rng(2)))
        assert n_short > n_long

    def test_all_revocations(self):
        events = create("failure", "weibull-lifetimes", mean_lifetime=10.0).events(
            10, 500.0, rng(0)
        )
        assert events and all(ev.action == "revoke" for ev in events)


class TestPreemptionWindows:
    def test_revocations_only_inside_windows(self):
        model = create(
            "failure", "preemption-windows", rate=0.5, period=100.0, offset=20.0, width=30.0
        )
        events = model.events(40, 1000.0, rng(9))
        assert events
        for ev in events:
            assert (ev.time - 20.0) % 100.0 < 30.0

    def test_window_validation(self):
        with pytest.raises(SimulationError, match="width"):
            create("failure", "preemption-windows", period=10.0, width=20.0)
        with pytest.raises(SimulationError, match="offset"):
            create("failure", "preemption-windows", period=10.0, width=5.0, offset=12.0)


class TestCapacityDips:
    def test_dips_never_overlap_per_server(self):
        model = create("failure", "capacity-dips", rate=0.05, mean_duration=20.0)
        events = model.events(10, 2000.0, rng(4))
        assert events
        by_server: dict[int, list] = {}
        for ev in events:
            assert ev.action == "dip"
            by_server.setdefault(ev.server, []).append(ev)
        for evs in by_server.values():
            evs.sort(key=lambda e: e.time)
            for a, b in zip(evs, evs[1:]):
                assert a.time + a.duration <= b.time + 1e-9

    def test_depth_sets_scale(self):
        events = create("failure", "capacity-dips", rate=0.05, depth=0.3).events(
            5, 2000.0, rng(4)
        )
        assert events and all(abs(ev.scale - 0.7) < 1e-12 for ev in events)


class TestTraceSchedule:
    def test_parses_explicit_events(self):
        model = create(
            "failure",
            "trace-schedule",
            events=[
                {"t": 5, "action": "revoke", "server": 1},
                {"t": 8, "action": "dip", "server": 0, "scale": 0.5, "duration": 4},
            ],
        )
        events = model.events(4, 100.0, rng(0))
        assert [ev.action for ev in events] == ["revoke", "dip"]
        assert events[1].scale == 0.5 and events[1].duration == 4.0

    def test_rejects_out_of_cluster_server(self):
        model = create(
            "failure", "trace-schedule", events=[{"t": 5, "action": "revoke", "server": 9}]
        )
        with pytest.raises(SimulationError, match="server 9"):
            model.events(4, 100.0, rng(0))

    def test_rejects_unknown_keys_and_missing_fields(self):
        with pytest.raises(SimulationError, match="missing"):
            create("failure", "trace-schedule", events=[{"t": 5, "server": 0}])
        with pytest.raises(SimulationError, match="unknown"):
            create(
                "failure",
                "trace-schedule",
                events=[{"t": 5, "action": "revoke", "server": 0, "oops": 1}],
            )

    def test_events_past_horizon_dropped(self):
        model = create(
            "failure", "trace-schedule", events=[{"t": 500, "action": "revoke", "server": 0}]
        )
        assert model.events(4, 100.0, rng(0)) == []


class TestCustomModelPlugin:
    def test_registered_plugin_is_addressable_from_scenarios(self):
        from repro.registry import register, unregister

        @register("failure", "test-blackout")
        class Blackout(FailureModel):
            name = "test-blackout"

            def events(self, n_servers, horizon, rng_):
                return [
                    FailureEvent(time=1.0, action="revoke", server=s)
                    for s in range(n_servers)
                ]

        try:
            s = Scenario().with_failures("test-blackout")
            assert s.failures == {"model": "test-blackout"}
        finally:
            unregister("failure", "test-blackout")
