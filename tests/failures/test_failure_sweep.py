"""Acceptance: failure-injected sweeps through the full pipeline.

The ISSUE's bar: a revocation sweep (failure model x >= 2 policies x >= 2
rates) runs through ``run_sweep`` with cache + workers and is bit-identical
serial vs. parallel and warm vs. cold — seeded RNG schedules make failure
injection exactly as deterministic as the failure-free replay.
"""

import pytest

from repro.scenario import Scenario, SweepCache, run_sweep, scenario_key

RATES = (0.005, 0.02)
POLICIES = ("proportional", "preemption")


@pytest.fixture(scope="module")
def grid():
    base = (
        Scenario(name="revocation-sweep")
        .with_workload("azure", n_vms=200, seed=11)
        .with_overcommitment(0.3)
    )
    return [
        base.with_policy(policy).with_failures(
            "spot", rate=rate, seed=7, response="evacuate"
        )
        for policy in POLICIES
        for rate in RATES
    ]


@pytest.fixture(scope="module")
def serial_results(grid):
    return run_sweep(grid)


class TestDeterminism:
    def test_parallel_bit_identical_to_serial(self, grid, serial_results):
        parallel = run_sweep(grid, workers=2)
        for a, b in zip(serial_results, parallel):
            assert a == b

    def test_rerun_bit_identical(self, grid, serial_results):
        again = run_sweep(grid)
        for a, b in zip(serial_results, again):
            assert a == b

    def test_different_schedule_seed_changes_outcome(self, grid):
        s = grid[0]
        reseeded = s.with_failures("spot", rate=RATES[0], seed=8, response="evacuate")
        a, b = run_sweep([s, reseeded])
        assert a.sim.collected != b.sim.collected

    def test_failures_actually_injected(self, serial_results):
        for r in serial_results:
            assert r.collected["failure-injection"]["revocations"] > 0


class TestCaching:
    def test_warm_cold_identical_on_disk(self, grid, serial_results, tmp_path):
        cache = SweepCache(tmp_path)
        cold = run_sweep(grid, workers=2, cache=cache)
        assert cache.stats()["misses"] == len(grid)
        warm = run_sweep(grid, cache=cache)
        assert cache.stats()["hits"] == len(grid)
        for a, b, c in zip(serial_results, cold, warm):
            assert a == b
            assert b == c

    def test_failure_config_changes_cache_key(self, grid):
        s = grid[0]
        assert scenario_key(s) != scenario_key(s.without_failures())
        assert scenario_key(s) != scenario_key(
            s.with_failures("spot", rate=RATES[0], seed=8, response="evacuate")
        )
        assert scenario_key(s) != scenario_key(
            s.with_failures("spot", rate=RATES[0], seed=7, response="kill")
        )
        # Same spec spelled through a dict round-trip shares the key.
        assert scenario_key(s) == scenario_key(Scenario.from_dict(s.to_dict()))

    def test_memory_cache_hit_and_miss_on_failure_change(self, grid):
        cache = SweepCache()
        run_sweep([grid[0]], cache=cache)
        assert (cache.hits, cache.misses) == (0, 1)
        run_sweep([grid[0]], cache=cache)
        assert (cache.hits, cache.misses) == (1, 1)
        changed = grid[0].with_failures(
            "spot", rate=0.03, seed=7, response="evacuate"
        )
        run_sweep([changed], cache=cache)
        assert (cache.hits, cache.misses) == (1, 2)


class TestPortfolioExperiment:
    def test_portfolio_runs_and_shows_deflation_dominating(self):
        from repro.experiments.portfolio import run

        result = run("small")
        assert len(result.rows) == 18  # 2 policies x 3 rates x 3 OC levels
        by_cell = {
            (r["policy"], r["revocation_rate"], r["overcommit_pct"]): r["availability"]
            for r in result.rows
        }
        # Deflation-first evacuation beats kill-based preemption in every
        # cell that actually has failures.
        for rate in (0.002, 0.01):
            for oc in (0.0, 30.0, 60.0):
                assert (
                    by_cell[("proportional", rate, oc)]
                    >= by_cell[("preemption", rate, oc)]
                )
