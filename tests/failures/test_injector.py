"""Injector semantics on hand-built traces with explicit schedules.

Every test drives a tiny, fully-controlled cluster through the
``trace-schedule`` model so outcomes are exact: which VM lands where, what
the allocation history records, and what the summary tallies.  Tests that
need simulator internals (residents, histories) go through
``ClusterSimEngine.build()`` — the blessed pre-run-surgery flow.
"""

import numpy as np
import pytest

from repro.core.vm import VMClass
from repro.errors import SimulationError
from repro.failures import FailureInjector
from repro.scenario import ClusterSimEngine, Scenario
from repro.traces.schema import VMTraceRecord, VMTraceSet


def vm(vm_id, cores=2, start=0, life=20, util=0.2, vm_class=VMClass.INTERACTIVE,
       memory_mb=None):
    return VMTraceRecord(
        vm_id=vm_id,
        vm_class=vm_class,
        cores=cores,
        memory_mb=memory_mb if memory_mb is not None else cores * 2048.0,
        start_interval=start,
        cpu_util=np.full(life, util),
    )


def scenario(traces, n_servers, failures, policy="proportional",
             cores_per_server=4.0, collectors=(), **failure_knobs):
    s = (
        Scenario(name="inj-test")
        .with_traces(VMTraceSet(traces))
        .with_policy(policy)
        .with_servers(n_servers)
        .with_server_shape(cores_per_server, cores_per_server * 2048.0)
    )
    if collectors:
        s = s.with_collectors(*collectors)
    if failures is not None:
        s = s.with_failures(
            "trace-schedule", events=list(failures), seed=0, **failure_knobs
        )
    return s


def build_and_run(*args, **kwargs):
    """(simulator, ClusterSimResult) for a scenario built from the args."""
    sim = ClusterSimEngine().build(scenario(*args, **kwargs))
    return sim, sim.run()


def revoke(t, server):
    return {"t": t, "action": "revoke", "server": server}


def dip(t, server, scale, duration):
    return {"t": t, "action": "dip", "server": server, "scale": scale, "duration": duration}


class TestRevocationEvacuate:
    def test_resident_migrates_to_surviving_server(self):
        # One VM on a 2-server cluster; its server (0, the argmax tie-break)
        # is revoked mid-life and the VM must continue on server 1.
        sim, res = build_and_run([vm("a")], 2, [revoke(5, 0)])
        fi = res.collected["failure-injection"]
        assert fi["revocations"] == 1 and fi["evacuated"] == 1
        assert fi["evacuation_lost"] == 0 and fi["lost_core_intervals"] == 0.0
        assert int(sim.vm_server[0]) == 1
        assert res.n_preempted == 0
        assert res.failure_probability == 0.0
        # Absorbed work = remaining lifetime x cores = (20 - 5) * 2.
        assert fi["absorbed_core_intervals"] == pytest.approx(30.0)

    def test_unplaceable_resident_is_lost(self):
        sim, res = build_and_run([vm("a")], 1, [revoke(5, 0)])
        fi = res.collected["failure-injection"]
        assert fi["evacuated"] == 0 and fi["evacuation_lost"] == 1
        assert fi["lost_core_intervals"] == pytest.approx(30.0)
        assert res.n_preempted == 1
        assert res.failure_probability == 1.0
        assert sim.allocation_history(0) == [(0.0, 1.0), (5.0, 0.0)]

    def test_on_demand_losses_not_counted_as_deflatable_failures(self):
        batch = vm("b", vm_class=VMClass.DELAY_INSENSITIVE)
        _, res = build_and_run([batch], 1, [revoke(5, 0)])
        fi = res.collected["failure-injection"]
        assert fi["on_demand_lost"] == 1
        assert res.n_preempted == 0
        assert res.failure_probability == 0.0  # no deflatable VM failed

    def test_revoked_server_rejects_later_arrivals(self):
        late = vm("late", start=10, life=5)
        _, res = build_and_run([late], 1, [revoke(5, 0)])
        assert res.n_rejected_deflatable == 1

    def test_evacuation_deflates_destination(self):
        # Two 3-core VMs on separate 4-core servers; after revoking server
        # 1's host, both must share one server, deflated (6 cores into 4).
        sim, res = build_and_run([vm("a", cores=3), vm("b", cores=3)], 2, [revoke(5, 1)])
        fi = res.collected["failure-injection"]
        assert fi["evacuated"] == 1
        assert int(sim.vm_server[0]) == 0 and int(sim.vm_server[1]) == 0
        assert not sim.outcomes[0].preempted and not sim.outcomes[1].preempted
        # Deflation shows up in the allocation histories.
        fracs = {f for _, f in sim.allocation_history(0)} | {
            f for _, f in sim.allocation_history(1)
        }
        assert any(f < 1.0 for f in fracs)
        assert res.throughput_loss == 0.0  # low utilization: deflation absorbed it


class TestRevocationKill:
    def test_kill_and_requeue_records_downtime(self):
        sim, res = build_and_run(
            [vm("a")], 2, [revoke(5, 0)], response="kill", restart_delay=3
        )
        fi = res.collected["failure-injection"]
        assert fi["killed"] == 1 and fi["recovered"] == 1
        assert fi["downtime_intervals"] == pytest.approx(3.0)
        # History: admitted at 0, killed at 5, restarted at 8.
        assert sim.allocation_history(0) == [(0.0, 1.0), (5.0, 0.0), (8.0, 1.0)]
        assert res.n_preempted == 0  # it recovered
        # Downtime is lost work; the rest of the lifetime is absorbed.
        assert fi["lost_core_intervals"] == pytest.approx(3 * 2.0)
        assert fi["absorbed_core_intervals"] == pytest.approx((20 - 8) * 2.0)

    def test_kill_without_requeue_loses_the_vm(self):
        _, res = build_and_run(
            [vm("a")], 2, [revoke(5, 0)], response="kill", restart_delay=None
        )
        fi = res.collected["failure-injection"]
        assert fi["killed"] == 1 and fi["recovered"] == 0
        assert fi["lost_core_intervals"] == pytest.approx(30.0)
        assert res.n_preempted == 1

    def test_requeue_past_lifetime_end_is_lost(self):
        _, res = build_and_run(
            [vm("a", life=8)], 2, [revoke(5, 0)], response="kill", restart_delay=10
        )
        fi = res.collected["failure-injection"]
        assert fi["killed"] == 1 and fi["recovered"] == 0
        assert fi["lost_core_intervals"] == pytest.approx(3 * 2.0)


class TestCapacityDips:
    def test_dip_deflates_then_reinflates(self):
        # A 4-core VM alone on a 4-core server; a 50% dip must halve its
        # allocation for exactly the dip window.
        sim, res = build_and_run([vm("a", cores=4)], 1, [dip(5, 0, 0.5, 5)])
        assert sim.allocation_history(0) == [(0.0, 1.0), (5.0, 0.5), (10.0, 1.0)]
        fi = res.collected["failure-injection"]
        assert fi["capacity_dips"] == 1 and fi["capacity_overruns"] == 0
        assert res.failure_probability == 0.0

    def test_dip_below_floors_counts_overrun(self):
        # min_fraction floors make a 95% dip unsatisfiable.
        s = scenario([vm("a", cores=4)], 1, [dip(5, 0, 0.05, 5)]).with_min_fraction(0.5)
        sim = ClusterSimEngine().build(s)
        res = sim.run()
        assert res.collected["failure-injection"]["capacity_overruns"] == 1
        assert res.n_reclaim_failures >= 1

    def test_preemption_baseline_evicts_lowest_priority(self):
        # Two deflatable VMs on one 4-core server under the preemption
        # baseline; a 50% dip leaves room for only one of them, and the
        # lower-priority VM (lower p95 utilization) must be the victim.
        low = vm("low", util=0.2)   # p95 < 0.33 -> lowest priority
        high = vm("high", util=0.7)  # p95 in [0.66, 0.80)
        sim, res = build_and_run([low, high], 1, [dip(5, 0, 0.5, 5)], policy="preemption")
        assert sim.outcomes[0].preempted and not sim.outcomes[1].preempted
        assert res.collected["failure-injection"]["capacity_overruns"] == 0

    def test_dip_on_revoked_server_is_ignored(self):
        _, res = build_and_run([vm("a")], 2, [revoke(5, 0), dip(6, 0, 0.5, 5)])
        assert res.collected["failure-injection"]["capacity_dips"] == 0

    def test_overlapping_dips_rejected_loudly(self):
        sim = ClusterSimEngine().build(
            scenario([vm("a")], 1, [dip(5, 0, 0.5, 10), dip(8, 0, 0.3, 10)])
        )
        with pytest.raises(SimulationError, match="overlapping capacity dips"):
            sim.run()

    def test_back_to_back_dips_allowed(self):
        sim, res = build_and_run([vm("a")], 1, [dip(5, 0, 0.5, 3), dip(8, 0, 0.5, 3)])
        assert res.collected["failure-injection"]["capacity_dips"] == 2

    def test_back_to_back_dips_hand_over_cleanly(self):
        # The first dip ends exactly when the second starts: the ending dip
        # must not cancel the starting one (dip ends process first).  A
        # 4-core VM on a 4-core server must stay deflated across t=15.
        sim, res = build_and_run(
            [vm("a", cores=4)], 1, [dip(5, 0, 0.5, 10), dip(15, 0, 0.5, 10)]
        )
        hist = sim.allocation_history(0)
        # Reinflated and immediately re-deflated at the handover; the VM
        # ends (t=20) still inside the second dip.
        assert hist == [(0.0, 1.0), (5.0, 0.5), (15.0, 1.0), (15.0, 0.5)]
        assert res.collected["failure-injection"]["capacity_dips"] == 2

    def test_full_outage_dip_rejected(self):
        with pytest.raises(SimulationError, match="scale"):
            scenario([vm("a")], 1, [dip(5, 0, 0.0, 3)])


class TestCascades:
    def test_zero_floor_never_places_on_revoked_server(self):
        # With min_fraction 0 a deflatable VM's own reclaimable pool covers
        # its whole demand, so capacity alone cannot rule out a dead server
        # — the liveness mask must.  Before the fix this produced NaN
        # placement scores (divide by zero capacity).
        import warnings

        s = scenario([vm("a"), vm("late", start=8, life=5)], 2, [revoke(5, 0)])
        s = s.with_min_fraction(0.0)
        sim = ClusterSimEngine().build(s)
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # any RuntimeWarning fails the test
            sim.run()
        assert int(sim.vm_server[0]) == 1  # evacuated to the live server
        assert int(sim.vm_server[1]) == 1  # late arrival avoided the dead one

    def test_preemption_cascade_counts_as_lost(self):
        # Preemption baseline: server 0 hosts a 4-core on-demand VM, server
        # 1 a 2-core deflatable one.  Revoking server 0 re-places the
        # on-demand VM on server 1, preempting the deflatable resident —
        # collateral damage that must be tallied as failure-caused loss.
        batch = vm("batch", cores=4, vm_class=VMClass.DELAY_INSENSITIVE)
        defl = vm("defl", cores=2)
        sim, res = build_and_run([batch, defl], 2, [revoke(5, 0)], policy="preemption")
        fi = res.collected["failure-injection"]
        assert int(sim.vm_server[0]) == 1
        assert sim.outcomes[1].preempted
        assert fi["cascade_preemptions"] == 1
        # The victim's remaining work: (20 - 5) intervals x 2 cores.
        assert fi["lost_core_intervals"] == pytest.approx(30.0)


class TestCollectorsAndResult:
    def test_failure_log_collector_records_events(self):
        _, res = build_and_run(
            [vm("a")], 2, [revoke(5, 0), dip(7, 1, 0.5, 3)],
            collectors=("failure-log",),
        )
        log = res.collected["failure-log"]
        assert (5.0, "revoke", 0, 0.0) in log
        assert (7.0, "dip", 1, 0.5) in log
        assert (10.0, "dip", 1, 1.0) in log  # restoration

    def test_no_injector_no_failure_payload(self):
        _, res = build_and_run([vm("a")], 2, None)
        assert "failure-injection" not in res.collected

    def test_total_capacity_reports_nominal_cores(self):
        _, res = build_and_run([vm("a")], 2, [revoke(5, 0)])
        assert res.total_capacity_cores == pytest.approx(8.0)


class TestInjectorSpec:
    def test_from_spec_splits_injector_and_model_params(self):
        inj = FailureInjector.from_spec(
            {"model": "spot", "rate": 0.01, "seed": 3, "response": "kill"}
        )
        assert inj.model.rate == 0.01
        assert inj.seed == 3 and inj.response == "kill"

    def test_from_spec_requires_model(self):
        with pytest.raises(SimulationError, match="model"):
            FailureInjector.from_spec({"rate": 0.01})

    def test_invalid_response_rejected(self):
        with pytest.raises(SimulationError, match="response"):
            FailureInjector.from_spec({"model": "spot", "response": "panic"})

    def test_unknown_model_param_fails_loudly(self):
        with pytest.raises(TypeError):
            FailureInjector.from_spec({"model": "spot", "warp_factor": 9})
