"""Churn semantics: correlated failures, warning-time drains, arrivals.

Three layers of coverage:

* model level — ``correlated-spot`` revokes whole blast-radius groups,
  ``elastic-pool`` interleaves arrivals with revocations, and both stay
  deterministic; blast radius 1 reproduces ``spot`` schedules bit for bit;
* injector level — hand-built ``trace-schedule`` clusters exercise the
  warning-window drain (budgets, retries, deadlines) and mid-run server
  attach with exact, asserted outcomes;
* scenario level — the ``topology`` schema field validates, round-trips,
  and feeds the failure model; ``correlated-spot`` with blast radius 1 and
  zero warning reproduces today's ``spot`` *results* bit-identically.
"""

import numpy as np
import pytest

from repro.core.vm import VMClass
from repro.errors import SimulationError
from repro.failures import FailureInjector, rack_split, resolve_topology
from repro.registry import create
from repro.scenario import ClusterSimEngine, Scenario
from repro.traces.schema import VMTraceRecord, VMTraceSet


def rng(seed=0):
    return np.random.default_rng(seed)


def vm(vm_id, cores=2, start=0, life=20, util=0.2, vm_class=VMClass.INTERACTIVE,
       memory_mb=None):
    return VMTraceRecord(
        vm_id=vm_id,
        vm_class=vm_class,
        cores=cores,
        memory_mb=memory_mb if memory_mb is not None else cores * 2048.0,
        start_interval=start,
        cpu_util=np.full(life, util),
    )


def scenario(traces, n_servers, failures, policy="proportional",
             cores_per_server=4.0, collectors=(), **failure_knobs):
    s = (
        Scenario(name="churn-test")
        .with_traces(VMTraceSet(traces))
        .with_policy(policy)
        .with_servers(n_servers)
        .with_server_shape(cores_per_server, cores_per_server * 2048.0)
    )
    if collectors:
        s = s.with_collectors(*collectors)
    if failures is not None:
        s = s.with_failures(
            "trace-schedule", events=list(failures), seed=0, **failure_knobs
        )
    return s


def build_and_run(*args, **kwargs):
    sim = ClusterSimEngine().build(scenario(*args, **kwargs))
    return sim, sim.run()


def revoke(t, server):
    return {"t": t, "action": "revoke", "server": server}


def arrive(t, server):
    return {"t": t, "action": "arrive", "server": server}


# -- topology resolution ----------------------------------------------------------


class TestTopology:
    def test_rack_split_contiguous_near_equal(self):
        ids = rack_split(10, 3)
        assert ids.tolist() == [0, 0, 0, 0, 1, 1, 1, 2, 2, 2]

    def test_rack_split_singletons_when_racks_exceed_servers(self):
        assert len(set(rack_split(5, 8).tolist())) == 5

    def test_groups_spec_with_singleton_default(self):
        ids = resolve_topology({"groups": [[0, 3], [1]]}, 5)
        assert ids[0] == ids[3]
        assert len({int(ids[i]) for i in (0, 1, 2, 4)}) == 4  # others distinct

    def test_group_index_out_of_range_rejected(self):
        with pytest.raises(SimulationError, match="only 3 servers"):
            resolve_topology({"groups": [[0, 5]]}, 3)

    def test_spec_validation(self):
        with pytest.raises(SimulationError, match="exactly one"):
            Scenario().with_topology()
        with pytest.raises(SimulationError, match="exactly one"):
            Scenario().with_topology(racks=2, groups=[[0]])
        with pytest.raises(SimulationError, match="racks must be >= 1"):
            Scenario().with_topology(racks=0)
        with pytest.raises(SimulationError, match="more than one topology group"):
            Scenario().with_topology(groups=[[0, 1], [1]])
        with pytest.raises(SimulationError, match="unknown topology keys"):
            Scenario(topology={"shelves": 3})

    def test_round_trips_and_changes_key(self):
        from repro.scenario import scenario_key

        s = (
            Scenario(name="topo")
            .with_workload("azure", n_vms=50, seed=1)
            .with_servers(4)
            .with_topology(racks=2)
        )
        spec = s.to_dict()
        assert spec["topology"] == {"racks": 2}
        assert Scenario.from_dict(spec) == s
        assert scenario_key(s) != scenario_key(s.without_topology())

    def test_topology_elided_when_absent(self):
        s = Scenario().with_workload("azure", n_vms=50, seed=1).with_servers(4)
        assert "topology" not in s.to_dict()


# -- correlated-spot --------------------------------------------------------------


class TestCorrelatedSpot:
    def test_group_members_revoked_together(self):
        model = create("failure", "correlated-spot", rate=0.01, racks=2)
        events = model.events(8, 2000.0, rng(3))
        by_time: dict[float, list[int]] = {}
        for ev in events:
            assert ev.action == "revoke"
            by_time.setdefault(ev.time, []).append(ev.server)
        racks = rack_split(8, 2)
        for servers in by_time.values():
            assert len({int(racks[s]) for s in servers}) == 1  # one group per burst
            assert sorted(servers) == sorted(
                np.nonzero(racks == racks[servers[0]])[0].tolist()
            )  # ... and the whole group

    def test_blast_radius_one_matches_spot_schedule(self):
        spot = create("failure", "spot", rate=0.01).events(30, 500.0, rng(7))
        corr = create("failure", "correlated-spot", rate=0.01, racks=30).events(
            30, 500.0, rng(7)
        )
        assert corr == spot

    def test_blast_radius_one_matches_spot_with_fraction(self):
        spot = create("failure", "spot", rate=0.05, fraction=0.5).events(
            20, 500.0, rng(5)
        )
        corr = create(
            "failure", "correlated-spot", rate=0.05, fraction=0.5, racks=20
        ).events(20, 500.0, rng(5))
        assert corr == spot

    def test_scenario_topology_overrides_model_racks(self):
        model = create("failure", "correlated-spot", rate=0.05, racks=1)
        groups = resolve_topology({"groups": [[0, 1], [2, 3]]}, 4)
        events = model.events_with_topology(4, 5000.0, rng(1), groups)
        times = sorted({ev.time for ev in events})
        # Two groups, two bursts of exactly two servers.
        assert len(events) == 4 and len(times) == 2

    def test_determinism(self):
        model = create("failure", "correlated-spot", rate=0.01, racks=4)
        assert model.events(16, 500.0, rng(9)) == model.events(16, 500.0, rng(9))

    def test_validation(self):
        with pytest.raises(SimulationError, match="rate"):
            create("failure", "correlated-spot", rate=0.0)
        with pytest.raises(SimulationError, match="racks"):
            create("failure", "correlated-spot", racks=0)

    def test_full_replay_blast_one_zero_warning_matches_spot(self):
        """The acceptance bar: correlated-spot degenerates to spot exactly."""
        base = (
            Scenario(name="degenerate")
            .with_workload("azure", n_vms=150, seed=3)
            .with_overcommitment(0.3)
        )
        spot = base.with_failures("spot", rate=0.01, seed=7).run()
        corr = base.with_failures(
            "correlated-spot", rate=0.01, racks=10_000, seed=7
        ).run()
        assert spot.sim == corr.sim


# -- elastic-pool -----------------------------------------------------------------


class TestElasticPool:
    def test_arrival_indices_contiguous_in_time_order(self):
        model = create("failure", "elastic-pool", rate=0.01, arrival_rate=0.05)
        events = model.events(10, 1000.0, rng(4))
        arrivals = sorted(
            (ev.time, ev.server) for ev in events if ev.action == "arrive"
        )
        assert arrivals
        assert [s for _, s in arrivals] == list(range(10, 10 + len(arrivals)))

    def test_arrived_servers_can_be_revoked(self):
        model = create("failure", "elastic-pool", rate=0.05, arrival_rate=0.1)
        events = model.events(5, 5000.0, rng(2))
        revoked = {ev.server for ev in events if ev.action == "revoke"}
        assert any(s >= 5 for s in revoked)
        # A server is revoked at most once.
        assert len([ev for ev in events if ev.action == "revoke"]) == len(revoked)

    def test_max_arrivals_caps_growth(self):
        model = create(
            "failure", "elastic-pool", rate=0.01, arrival_rate=1.0, max_arrivals=3
        )
        events = model.events(5, 1000.0, rng(1))
        assert sum(1 for ev in events if ev.action == "arrive") == 3

    def test_determinism(self):
        model = create("failure", "elastic-pool", rate=0.01, arrival_rate=0.05)
        assert model.events(10, 500.0, rng(6)) == model.events(10, 500.0, rng(6))

    def test_validation(self):
        with pytest.raises(SimulationError, match="arrival_rate"):
            create("failure", "elastic-pool", arrival_rate=0.0)


# -- server arrivals through the injector -----------------------------------------


class TestServerAttach:
    def test_late_vm_lands_on_arrived_server(self):
        # One 4-core server fully occupied by an on-demand VM (no
        # reclaimable pool); the late VM fits only on the server that
        # arrives at t=5.
        first = vm("first", cores=4, vm_class=VMClass.DELAY_INSENSITIVE)
        late = vm("late", cores=4, start=8, life=5)
        sim, res = build_and_run([first, late], 1, [arrive(5, 1)])
        assert res.n_rejected_deflatable == 0
        assert int(sim.vm_server[1]) == 1
        fi = res.collected["failure-injection"]
        assert fi["server_arrivals"] == 1
        assert fi["arrived_nominal_cores"] == pytest.approx(4.0)

    def test_nominal_capacity_counts_arrivals(self):
        _, res = build_and_run([vm("a")], 1, [arrive(5, 1), arrive(6, 2)])
        assert res.total_capacity_cores == pytest.approx(12.0)  # 1 + 2 arrivals @ 4

    def test_without_arrival_late_vm_is_rejected(self):
        first = vm("first", cores=4, vm_class=VMClass.DELAY_INSENSITIVE)
        late = vm("late", cores=4, start=8, life=5)
        _, res = build_and_run([first, late], 1, None)
        assert res.n_rejected_deflatable == 1

    def test_arrived_server_can_be_revoked(self):
        first = vm("first", cores=4, vm_class=VMClass.DELAY_INSENSITIVE)
        late = vm("late", cores=4, start=8, life=10)
        sim, res = build_and_run(
            [first, late], 1, [arrive(5, 1), revoke(12, 1)]
        )
        fi = res.collected["failure-injection"]
        assert fi["server_arrivals"] == 1 and fi["revocations"] == 1
        # The late VM was evacuated back... nowhere fits (server 0 is full
        # until t=20), so it is lost.
        assert fi["evacuation_lost"] == 1

    def test_noncontiguous_arrival_rejected(self):
        sim = ClusterSimEngine().build(scenario([vm("a")], 1, [arrive(5, 3)]))
        with pytest.raises(SimulationError, match="contiguous"):
            sim.run()

    def test_event_before_arrival_rejected(self):
        sim = ClusterSimEngine().build(
            scenario([vm("a")], 1, [revoke(2, 1), arrive(5, 1)])
        )
        with pytest.raises(SimulationError, match="before its arrival"):
            sim.run()

    def test_failure_log_records_arrivals(self):
        _, res = build_and_run(
            [vm("a")], 1, [arrive(5, 1)], collectors=("failure-log",)
        )
        assert (5.0, "arrive", 1, 1.0) in res.collected["failure-log"]


# -- warning-time drains ----------------------------------------------------------


class TestWarningDrain:
    def test_unbudgeted_drain_migrates_everything_at_warning(self):
        sim, res = build_and_run(
            [vm("a")], 2, [revoke(5, 0)], warning_intervals=3
        )
        fi = res.collected["failure-injection"]
        assert fi["evacuated"] == 1 and fi["deadline_killed"] == 0
        assert int(sim.vm_server[0]) == 1
        assert res.failure_probability == 0.0

    def test_budget_rations_migrations_one_per_tick(self):
        # Three 1-core VMs on server 0 (4 cores); warning 2, budget 1 VM:
        # migrations at t=5 and t=6, the straggler dies at the t=7 deadline.
        vms = [vm(f"v{i}", cores=1) for i in range(3)]
        spare = vm("spare", cores=1, start=0, life=1)  # keeps server 1 in play
        sim, res = build_and_run(
            [spare] + vms, 2, [revoke(5, 0)],
            warning_intervals=2, evacuation_budget=1,
        )
        fi = res.collected["failure-injection"]
        assert fi["evacuated"] == 2
        assert fi["deadline_killed"] == 1
        assert fi["evacuation_lost"] == 0
        assert res.n_preempted == 1  # the straggler
        # Lost work: the straggler's remaining (20 - 7) intervals x 1 core.
        assert fi["lost_core_intervals"] == pytest.approx(13.0)

    def test_cores_budget_lets_oversized_vm_through_first(self):
        # 3-core VM + 1-core VM under a 2-core/tick budget: the 3-core VM
        # exceeds the whole budget but moves as the tick's first migration;
        # the 1-core VM follows at the next tick.
        big = vm("big", cores=3)
        small = vm("small", cores=1)
        sim, res = build_and_run(
            [big, small], 3, [revoke(5, 0)],
            warning_intervals=3, evacuation_budget={"cores": 2.0},
        )
        fi = res.collected["failure-injection"]
        assert fi["evacuated"] == 2 and fi["deadline_killed"] == 0

    def test_draining_server_refuses_new_placements(self):
        # Server 0 drains from t=5; a VM arriving at t=6 has only server 0
        # free capacity-wise — it must be rejected, not placed on the
        # doomed server.  The blocker is on-demand, so the late VM cannot
        # deflate its way onto server 1 either.
        blocker = vm("blocker", cores=4, vm_class=VMClass.DELAY_INSENSITIVE)
        late = vm("late", cores=4, start=6, life=4)
        sim, res = build_and_run(
            [blocker, late], 2, [revoke(5, 0)],
            warning_intervals=3,
        )
        # blocker starts on server 0 (argmax tie-break), drains to server 1
        # at t=5; late then finds server 0 draining and server 1 full.
        assert int(sim.vm_server[0]) == 1
        assert res.n_rejected_deflatable == 1

    def test_failed_migration_retries_next_tick(self):
        # The only destination (server 0, held by an on-demand blocker) is
        # full until the blocker ends at t=6; the drain tick at t=5 finds
        # no room, the t=6 tick (after the departure) works.
        blocker = vm(
            "blocker", cores=4, start=0, life=6, vm_class=VMClass.DELAY_INSENSITIVE
        )
        mover = vm("mover", cores=4)
        sim, res = build_and_run(
            [blocker, mover], 2, [revoke(5, 1)],
            warning_intervals=4,
        )
        fi = res.collected["failure-injection"]
        assert int(sim.vm_server[1]) == 0
        assert fi["evacuated"] == 1 and fi["deadline_killed"] == 0
        # Full allocation throughout: the re-admission logs a 1.0 entry at
        # the migration instant, and no deflation ever happened.
        assert sim.allocation_history(1) == [(0.0, 1.0), (6.0, 1.0)]

    def test_residents_keep_running_until_deadline(self):
        # With no destination at all, the VM runs on the draining server
        # through the whole warning window and dies exactly at deadline.
        sim, res = build_and_run(
            [vm("a")], 1, [revoke(5, 0)], warning_intervals=3
        )
        fi = res.collected["failure-injection"]
        assert fi["deadline_killed"] == 1
        assert sim.allocation_history(0) == [(0.0, 1.0), (8.0, 0.0)]
        assert fi["lost_core_intervals"] == pytest.approx((20 - 8) * 2.0)

    def test_vm_ending_during_drain_is_not_killed(self):
        sim, res = build_and_run(
            [vm("a", life=7)], 1, [revoke(5, 0)], warning_intervals=5
        )
        fi = res.collected["failure-injection"]
        assert fi["deadline_killed"] == 0 and fi["evacuated"] == 0
        assert res.n_preempted == 0  # ended naturally at t=7, before t=10

    def test_on_demand_stragglers_counted_separately(self):
        batch = vm("batch", cores=4, vm_class=VMClass.DELAY_INSENSITIVE)
        _, res = build_and_run(
            [batch], 1, [revoke(5, 0)], warning_intervals=2
        )
        fi = res.collected["failure-injection"]
        assert fi["deadline_killed"] == 1 and fi["on_demand_lost"] == 1
        assert res.failure_probability == 0.0  # no deflatable VM failed

    def test_deadline_hook_and_log(self):
        _, res = build_and_run(
            [vm("a")], 1, [revoke(5, 0)], warning_intervals=2,
            collectors=("failure-log",),
        )
        log = res.collected["failure-log"]
        assert (5.0, "revoke", 0, 0.0) in log  # the warning
        assert (7.0, "deadline", 0, 0.0) in log  # the reclamation

    def test_validation(self):
        with pytest.raises(SimulationError, match="warning_intervals must be > 0"):
            FailureInjector.from_spec({"model": "spot", "warning_intervals": 0})
        with pytest.raises(SimulationError, match='response="evacuate"'):
            FailureInjector.from_spec(
                {"model": "spot", "warning_intervals": 2, "response": "kill"}
            )
        with pytest.raises(SimulationError, match="needs warning_intervals"):
            FailureInjector.from_spec({"model": "spot", "evacuation_budget": 2})
        with pytest.raises(SimulationError, match="exactly one"):
            FailureInjector.from_spec(
                {"model": "spot", "warning_intervals": 2,
                 "evacuation_budget": {"vms": 1, "cores": 2.0}}
            )
        with pytest.raises(SimulationError, match=">= 1"):
            FailureInjector.from_spec(
                {"model": "spot", "warning_intervals": 2, "evacuation_budget": 0}
            )


# -- sweep determinism ------------------------------------------------------------


class TestSweepDeterminism:
    def test_churn_grid_serial_parallel_identical(self):
        from repro.scenario import run_sweep

        base = (
            Scenario(name="churn-det")
            .with_workload("azure", n_vms=150, seed=11)
            .with_overcommitment(0.3)
        )
        grid = [
            base.with_topology(racks=3).with_failures(
                "correlated-spot", rate=0.01, seed=7
            ),
            base.with_failures(
                "spot", rate=0.01, seed=7, warning_intervals=2, evacuation_budget=1
            ),
            base.with_failures("elastic-pool", rate=0.01, arrival_rate=0.05, seed=7),
        ]
        serial = run_sweep(grid)
        parallel = run_sweep(grid, workers=2)
        for a, b in zip(serial, parallel):
            assert a == b


# -- the churn experiment ---------------------------------------------------------


class TestChurnExperiment:
    def test_churn_frontier_orders_the_regimes(self):
        from repro.experiments.churn import run

        result = run("small")
        assert len(result.rows) == 8  # 4 regimes x 2 OC levels
        by_cell = {(r["regime"], r["overcommit_pct"]): r for r in result.rows}
        for oc in (0.0, 30.0):
            independent = by_cell[("independent", oc)]
            correlated = by_cell[("correlated", oc)]
            elastic = by_cell[("elastic", oc)]
            warned = by_cell[("correlated+warning", oc)]
            # Correlated bursts hurt availability more than the same
            # hazard volume arriving independently; elastic arrivals
            # (independent hazard + refill) repair the frontier
            # (deterministic for the pinned seed).
            assert correlated["availability"] < independent["availability"]
            assert elastic["availability"] >= independent["availability"]
            assert elastic["server_arrivals"] > 0
            assert warned["deadline_killed"] > 0
            assert independent["deadline_killed"] == 0
