"""Tests for the Alibaba-style container trace synthesizer."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.feasibility.analysis import deflation_sweep, utilization_summary
from repro.traces.alibaba import AlibabaTraceConfig, synthesize_alibaba_trace


@pytest.fixture(scope="module")
def trace():
    return synthesize_alibaba_trace(AlibabaTraceConfig(n_containers=250, seed=4))


class TestStructure:
    def test_population(self, trace):
        assert len(trace) == 250

    def test_series_aligned(self, trace):
        for rec in trace:
            n = rec.lifetime_intervals
            assert rec.mem_bw_util.size == n
            assert rec.disk_util.size == n
            assert rec.net_util.size == n

    def test_deterministic(self):
        a = synthesize_alibaba_trace(AlibabaTraceConfig(n_containers=20, seed=7))
        b = synthesize_alibaba_trace(AlibabaTraceConfig(n_containers=20, seed=7))
        np.testing.assert_array_equal(a[0].mem_util, b[0].mem_util)

    def test_series_matrix(self, trace):
        mat = trace.series_matrix("mem_util")
        assert mat.shape[0] == len(trace)

    def test_validation(self):
        with pytest.raises(TraceError):
            AlibabaTraceConfig(n_containers=0)


class TestCalibration:
    """Section 3.2.2 bands for Figures 9-12."""

    def test_memory_occupancy_high(self, trace):
        """Fig 9: at 10% memory deflation, most containers 'underallocated'
        more than 70% of the time."""
        series = [r.mem_util for r in trace]
        median = deflation_sweep(series, (0.1,)).medians()[0]
        assert median > 0.70

    def test_memory_bandwidth_tiny(self, trace):
        """Fig 10: mean <0.1%, max ~1%."""
        series = [r.mem_bw_util for r in trace]
        stats = utilization_summary(series)
        assert stats.mean < 0.002
        assert max(float(s.max()) for s in series) <= 0.0101

    def test_disk_feasible_at_50pct(self, trace):
        """Fig 11: <1% of time underallocated at 50% disk deflation."""
        series = [r.disk_util for r in trace]
        mean = deflation_sweep(series, (0.5,)).means()[0]
        assert mean < 0.01

    def test_network_feasible(self, trace):
        """Fig 12: ~1% at 70% deflation, near-zero below 50%."""
        series = [r.net_util for r in trace]
        at_70 = deflation_sweep(series, (0.7,)).means()[0]
        at_50 = deflation_sweep(series, (0.5,)).means()[0]
        assert at_70 < 0.05
        assert at_50 < 0.005
