"""Tests for trace schemas and bulk accessors."""

import numpy as np
import pytest

from repro.core.vm import VMClass
from repro.errors import TraceError
from repro.traces.schema import (
    INTERVALS_PER_DAY,
    ContainerTraceRecord,
    VMTraceRecord,
    VMTraceSet,
)


def rec(util, cores=4, mem=8192, start=0, cls=VMClass.INTERACTIVE, vm_id="v"):
    return VMTraceRecord(
        vm_id=vm_id,
        vm_class=cls,
        cores=cores,
        memory_mb=mem,
        start_interval=start,
        cpu_util=np.asarray(util, dtype=float),
    )


class TestVMTraceRecord:
    def test_derived_fields(self):
        r = rec([0.1, 0.2, 0.9], start=5)
        assert r.lifetime_intervals == 3
        assert r.end_interval == 8
        assert r.mean_cpu == pytest.approx(0.4)
        assert r.p95_cpu == pytest.approx(np.percentile([0.1, 0.2, 0.9], 95))

    def test_size_classes(self):
        assert rec([0.1], mem=2048).size_class() == "small(<=2GB)"
        assert rec([0.1], mem=8192).size_class() == "medium(<=8GB)"
        assert rec([0.1], mem=16384).size_class() == "large(>8GB)"

    def test_peak_classes(self):
        assert rec([0.1] * 100).peak_class() == "p95<33%"
        assert rec([0.5] * 100).peak_class() == "33%<=p95<66%"
        assert rec([0.7] * 100).peak_class() == "66%<=p95<80%"
        assert rec([0.95] * 100).peak_class() == "p95>=80%"

    def test_validation(self):
        with pytest.raises(TraceError):
            rec([1.5])  # out of range
        with pytest.raises(TraceError):
            rec([])  # empty
        with pytest.raises(TraceError):
            rec([[0.1]])  # 2-D
        with pytest.raises(TraceError):
            rec([0.1], cores=0)
        with pytest.raises(TraceError):
            rec([0.1], start=-1)

    def test_clipping_tolerates_epsilon(self):
        r = rec([1.0 + 1e-12])
        assert r.cpu_util.max() <= 1.0


class TestVMTraceSet:
    def test_filters(self):
        records = [
            rec([0.1], cls=VMClass.INTERACTIVE, vm_id="a"),
            rec([0.9], cls=VMClass.DELAY_INSENSITIVE, vm_id="b"),
        ]
        ts = VMTraceSet(records)
        assert len(ts.by_class(VMClass.INTERACTIVE)) == 1
        assert ts.by_class(VMClass.INTERACTIVE)[0].vm_id == "a"

    def test_horizon(self):
        ts = VMTraceSet([rec([0.1] * 10, start=5), rec([0.1] * 3, start=20)])
        assert ts.horizon() == 23

    def test_total_core_intervals(self):
        ts = VMTraceSet([rec([0.1] * 10, cores=4)])
        assert ts.total_core_intervals() == 40

    def test_intervals_per_day_constant(self):
        assert INTERVALS_PER_DAY == 288


class TestContainerRecord:
    def test_length_mismatch_rejected(self):
        with pytest.raises(TraceError):
            ContainerTraceRecord(
                container_id="c",
                mem_util=np.zeros(5),
                mem_bw_util=np.zeros(5),
                disk_util=np.zeros(4),
                net_util=np.zeros(5),
            )
