"""Tests for the Azure-style trace synthesizer, including the calibration
bands the feasibility figures depend on."""

import numpy as np
import pytest

from repro.core.vm import VMClass
from repro.errors import TraceError
from repro.feasibility.analysis import deflation_sweep
from repro.traces.azure import SIZE_MENU, AzureTraceConfig, synthesize_azure_trace
from repro.traces.schema import INTERVALS_PER_DAY


@pytest.fixture(scope="module")
def trace():
    return synthesize_azure_trace(AzureTraceConfig(n_vms=500, seed=99))


class TestStructure:
    def test_population_size(self, trace):
        assert len(trace) == 500

    def test_deterministic_per_seed(self):
        a = synthesize_azure_trace(AzureTraceConfig(n_vms=50, seed=1))
        b = synthesize_azure_trace(AzureTraceConfig(n_vms=50, seed=1))
        for ra, rb in zip(a, b):
            assert ra.vm_class == rb.vm_class
            np.testing.assert_array_equal(ra.cpu_util, rb.cpu_util)

    def test_different_seeds_differ(self):
        a = synthesize_azure_trace(AzureTraceConfig(n_vms=50, seed=1))
        b = synthesize_azure_trace(AzureTraceConfig(n_vms=50, seed=2))
        assert any(
            not np.array_equal(ra.cpu_util, rb.cpu_util) for ra, rb in zip(a, b)
        )

    def test_utilization_in_unit_interval(self, trace):
        for rec in trace:
            assert rec.cpu_util.min() >= 0.0
            assert rec.cpu_util.max() <= 1.0

    def test_lifetimes_within_horizon(self, trace):
        horizon = AzureTraceConfig().horizon_intervals
        for rec in trace:
            assert 0 <= rec.start_interval < rec.end_interval <= horizon

    def test_sizes_from_menu(self, trace):
        menu = set(SIZE_MENU)
        for rec in trace:
            assert (rec.cores, rec.memory_mb) in menu

    def test_class_mix_roughly_matches_config(self, trace):
        frac_interactive = sum(
            1 for r in trace if r.vm_class == VMClass.INTERACTIVE
        ) / len(trace)
        assert 0.40 < frac_interactive < 0.60  # configured 0.50

    def test_all_size_classes_populated(self, trace):
        labels = {r.size_class() for r in trace}
        assert labels == {"small(<=2GB)", "medium(<=8GB)", "large(>8GB)"}


class TestCalibration:
    """The headline statistics from Section 3.2.1 must hold (in band)."""

    def test_interactive_low_impact_at_10pct(self, trace):
        series = [r.cpu_util for r in trace.by_class(VMClass.INTERACTIVE)]
        mean_impact = deflation_sweep(series, (0.1,)).means()[0]
        assert mean_impact < 0.05  # paper: ~1%

    def test_interactive_impact_band_at_50pct(self, trace):
        series = [r.cpu_util for r in trace.by_class(VMClass.INTERACTIVE)]
        mean_impact = deflation_sweep(series, (0.5,)).means()[0]
        assert 0.05 < mean_impact < 0.30  # paper: ~15%

    def test_batch_more_impacted_than_interactive(self, trace):
        inter = [r.cpu_util for r in trace.by_class(VMClass.INTERACTIVE)]
        batch = [r.cpu_util for r in trace.by_class(VMClass.DELAY_INSENSITIVE)]
        for lvl in (0.2, 0.4, 0.5):
            mi = deflation_sweep(inter, (lvl,)).means()[0]
            mb = deflation_sweep(batch, (lvl,)).means()[0]
            assert mb > mi

    def test_median_vm_mostly_below_50pct_allocation(self, trace):
        """Fig 5's headline: at 50% deflation the median VM spends most of
        its time below the deflated allocation."""
        series = [r.cpu_util for r in trace]
        median = deflation_sweep(series, (0.5,)).medians()[0]
        assert median <= 0.30

    def test_size_has_no_strong_correlation(self, trace):
        """Fig 7: deflatability is similar across size buckets."""
        means = []
        for label in ("small(<=2GB)", "medium(<=8GB)", "large(>8GB)"):
            series = [r.cpu_util for r in trace.by_size_class(label)]
            means.append(deflation_sweep(series, (0.5,)).means()[0])
        assert max(means) - min(means) < 0.20

    def test_peak_class_orders_impact(self, trace):
        """Fig 8: higher p95 usage means more impact under deflation."""
        labels = ("p95<33%", "33%<=p95<66%", "66%<=p95<80%", "p95>=80%")
        means = []
        for label in labels:
            series = [r.cpu_util for r in trace.by_peak_class(label)]
            if series:
                means.append(deflation_sweep(series, (0.4,)).means()[0])
        assert means == sorted(means)


class TestValidation:
    def test_bad_counts(self):
        with pytest.raises(TraceError):
            AzureTraceConfig(n_vms=0)
        with pytest.raises(TraceError):
            AzureTraceConfig(horizon_intervals=1)

    def test_class_mix_must_sum_to_one(self):
        with pytest.raises(TraceError):
            AzureTraceConfig(class_mix={VMClass.INTERACTIVE: 0.5})

    def test_diurnal_arrivals_cluster(self):
        cfg = AzureTraceConfig(n_vms=2000, seed=5, diurnal_arrival_ratio=8.0,
                               horizon_intervals=2 * INTERVALS_PER_DAY)
        tr = synthesize_azure_trace(cfg)
        phases = np.array([r.start_interval % INTERVALS_PER_DAY for r in tr])
        # Peak half of the sine (centered on the intensity maximum) should
        # hold clearly more than half the arrivals.
        peak_mask = np.sin(2 * np.pi * phases / INTERVALS_PER_DAY) > 0
        assert peak_mask.mean() > 0.6
