"""Tests for the request-workload generators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TraceError
from repro.traces.workload_gen import (
    RequestTrace,
    diurnal_rate,
    lognormal_service_demands,
    make_request_trace,
    poisson_arrivals,
)


class TestPoissonArrivals:
    def test_rate_matches(self):
        rng = np.random.default_rng(0)
        times = poisson_arrivals(100.0, 200.0, rng)
        assert times.size == pytest.approx(100 * 200, rel=0.05)

    def test_sorted_and_bounded(self):
        rng = np.random.default_rng(1)
        times = poisson_arrivals(50.0, 10.0, rng)
        assert np.all(np.diff(times) >= 0)
        assert times.max() < 10.0

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(TraceError):
            poisson_arrivals(0, 10, rng)
        with pytest.raises(TraceError):
            poisson_arrivals(10, 0, rng)


class TestServiceDemands:
    def test_mean_and_cv(self):
        rng = np.random.default_rng(2)
        x = lognormal_service_demands(200_000, mean_s=0.02, cv=1.5, rng=rng)
        assert x.mean() == pytest.approx(0.02, rel=0.03)
        assert x.std() / x.mean() == pytest.approx(1.5, rel=0.05)

    def test_all_positive(self):
        rng = np.random.default_rng(3)
        assert np.all(lognormal_service_demands(1000, 0.01, 1.0, rng) > 0)

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(TraceError):
            lognormal_service_demands(10, -1, 1, rng)


class TestRequestTrace:
    def test_make_request_trace(self):
        wl = make_request_trace(rate_per_s=100, duration_s=10, mean_service_s=0.01, seed=1)
        assert wl.n_requests > 0
        assert wl.duration < 10
        assert wl.offered_load_cpu_seconds > 0

    def test_alignment_enforced(self):
        with pytest.raises(TraceError):
            RequestTrace(arrivals=np.array([1.0, 2.0]), service_demands=np.array([1.0]))

    def test_sortedness_enforced(self):
        with pytest.raises(TraceError):
            RequestTrace(
                arrivals=np.array([2.0, 1.0]), service_demands=np.array([1.0, 1.0])
            )

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=1000))
    def test_determinism(self, seed):
        a = make_request_trace(50, 5, 0.01, seed=seed)
        b = make_request_trace(50, 5, 0.01, seed=seed)
        np.testing.assert_array_equal(a.arrivals, b.arrivals)
        np.testing.assert_array_equal(a.service_demands, b.service_demands)


class TestDiurnalRate:
    def test_bounds(self):
        t = np.linspace(0, 86_400, 1000)
        r = diurnal_rate(t, base_rate=10, peak_rate=50)
        assert r.min() >= 10 - 1e-9
        assert r.max() <= 50 + 1e-9

    def test_validation(self):
        with pytest.raises(TraceError):
            diurnal_rate(np.zeros(1), base_rate=10, peak_rate=5)
