"""Round-trip tests for trace persistence."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.traces.alibaba import AlibabaTraceConfig, synthesize_alibaba_trace
from repro.traces.azure import AzureTraceConfig, synthesize_azure_trace
from repro.traces.io import (
    load_container_traces,
    load_vm_traces,
    save_container_traces,
    save_vm_traces,
)


class TestVMTraceIO:
    def test_roundtrip(self, tmp_path):
        original = synthesize_azure_trace(AzureTraceConfig(n_vms=30, seed=11))
        path = tmp_path / "vms.npz"
        save_vm_traces(original, path)
        loaded = load_vm_traces(path)
        assert len(loaded) == len(original)
        for a, b in zip(original, loaded):
            assert a.vm_id == b.vm_id
            assert a.vm_class == b.vm_class
            assert a.cores == b.cores
            assert a.memory_mb == b.memory_mb
            assert a.start_interval == b.start_interval
            np.testing.assert_allclose(a.cpu_util, b.cpu_util, atol=1e-6)

    def test_missing_file(self, tmp_path):
        with pytest.raises(TraceError):
            load_vm_traces(tmp_path / "nope.npz")


class TestContainerTraceIO:
    def test_roundtrip(self, tmp_path):
        original = synthesize_alibaba_trace(AlibabaTraceConfig(n_containers=10, seed=2))
        path = tmp_path / "containers.npz"
        save_container_traces(original, path)
        loaded = load_container_traces(path)
        assert len(loaded) == len(original)
        for a, b in zip(original, loaded):
            assert a.container_id == b.container_id
            np.testing.assert_allclose(a.mem_util, b.mem_util, atol=1e-6)
            np.testing.assert_allclose(a.net_util, b.net_util, atol=1e-6)

    def test_missing_file(self, tmp_path):
        with pytest.raises(TraceError):
            load_container_traces(tmp_path / "nope.npz")
