"""Round-trip tests for trace persistence.

The module's contract is *bit-stability*: save → load → save must
reproduce every field exactly (float64 ``cpu_util`` included), new
archives must not contain the historical stray ``allow_pickle`` key, and
legacy archives (stray key, float32 series) must still load.
"""

import io
import struct
import zipfile

import numpy as np
import pytest

from repro.errors import TraceError
from repro.traces.alibaba import AlibabaTraceConfig, synthesize_alibaba_trace
from repro.traces.azure import AzureTraceConfig, synthesize_azure_trace
from repro.traces.io import (
    load_container_traces,
    load_vm_traces,
    save_container_traces,
    save_vm_traces,
)


def add_stray_allow_pickle_member(path):
    """Recreate the legacy bug: an ``allow_pickle`` array inside the archive.

    Old numpy's ``savez_compressed(file, *args, **kwds)`` had no
    ``allow_pickle`` parameter, so the kwarg the old save path passed was
    swallowed into ``kwds`` and written as a bogus archive member; modern
    numpy consumes the kwarg, so the member is injected by hand here.
    """
    buf = io.BytesIO()
    np.lib.format.write_array(buf, np.array(True))
    with zipfile.ZipFile(path, "a") as zf:
        zf.writestr("allow_pickle.npy", buf.getvalue())


@pytest.fixture(scope="module")
def vm_traces():
    return synthesize_azure_trace(AzureTraceConfig(n_vms=30, seed=11))


@pytest.fixture(scope="module")
def container_traces():
    return synthesize_alibaba_trace(AlibabaTraceConfig(n_containers=10, seed=2))


class TestVMTraceIO:
    def test_roundtrip_bit_identical(self, vm_traces, tmp_path):
        path = tmp_path / "vms.npz"
        save_vm_traces(vm_traces, path)
        loaded = load_vm_traces(path)
        assert len(loaded) == len(vm_traces)
        for a, b in zip(vm_traces, loaded):
            assert a.vm_id == b.vm_id
            assert a.vm_class == b.vm_class
            assert a.cores == b.cores
            assert a.memory_mb == b.memory_mb
            assert a.start_interval == b.start_interval
            assert b.cpu_util.dtype == np.float64
            np.testing.assert_array_equal(a.cpu_util, b.cpu_util)

    def test_save_load_save_is_bit_stable(self, vm_traces, tmp_path):
        """The second generation archive equals the first, member by member."""
        first, second = tmp_path / "gen1.npz", tmp_path / "gen2.npz"
        save_vm_traces(vm_traces, first)
        save_vm_traces(load_vm_traces(first), second)
        with np.load(first, allow_pickle=True) as a, np.load(second, allow_pickle=True) as b:
            assert sorted(a.files) == sorted(b.files)
            for key in a.files:
                np.testing.assert_array_equal(a[key], b[key])
                assert a[key].dtype == b[key].dtype

    def test_new_archives_have_no_stray_allow_pickle_key(self, vm_traces, tmp_path):
        path = tmp_path / "vms.npz"
        save_vm_traces(vm_traces, path)
        with np.load(path, allow_pickle=True) as data:
            assert "allow_pickle" not in data.files

    def test_legacy_archive_with_stray_key_and_float32_loads(self, vm_traces, tmp_path):
        """What the old save path wrote: float32 series + the leaked kwarg."""
        path = tmp_path / "legacy.npz"
        payload = {
            "vm_ids": np.array([r.vm_id for r in vm_traces], dtype=object),
            "classes": np.array([r.vm_class.value for r in vm_traces], dtype=object),
            "cores": np.array([r.cores for r in vm_traces], dtype=np.int64),
            "memory_mb": np.array([r.memory_mb for r in vm_traces], dtype=np.float64),
            "starts": np.array([r.start_interval for r in vm_traces], dtype=np.int64),
        }
        for i, rec in enumerate(vm_traces):
            payload[f"util_{i}"] = rec.cpu_util.astype(np.float32)
        np.savez_compressed(path, **payload)
        add_stray_allow_pickle_member(path)
        with np.load(path, allow_pickle=True) as data:
            assert "allow_pickle" in data.files  # a faithful legacy archive
        loaded = load_vm_traces(path)
        assert len(loaded) == len(vm_traces)
        for a, b in zip(vm_traces, loaded):
            assert a.vm_id == b.vm_id
            assert b.cpu_util.dtype == np.float64
            np.testing.assert_allclose(a.cpu_util, b.cpu_util, atol=1e-6)

    def test_missing_file(self, tmp_path):
        with pytest.raises(TraceError, match="does not exist"):
            load_vm_traces(tmp_path / "nope.npz")

    def test_truncated_archive_raises_trace_error(self, vm_traces, tmp_path):
        path = tmp_path / "vms.npz"
        save_vm_traces(vm_traces, path)
        clipped = tmp_path / "clipped.npz"
        clipped.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
        with pytest.raises(TraceError, match="not a readable"):
            load_vm_traces(clipped)

    def test_non_archive_file_raises_trace_error(self, tmp_path):
        path = tmp_path / "garbage.npz"
        path.write_bytes(b"this is not a zip archive")
        with pytest.raises(TraceError, match="not a readable"):
            load_vm_traces(path)

    def test_corrupt_member_raises_trace_error(self, vm_traces, tmp_path):
        """Members decompress lazily: an intact zip directory over
        bit-rotted member data must still surface as TraceError."""
        path = tmp_path / "vms.npz"
        save_vm_traces(vm_traces, path)
        raw = bytearray(path.read_bytes())
        with zipfile.ZipFile(path) as zf:
            info = zf.getinfo("util_0.npy")
        # Flip bytes in the member's compressed payload — the local file
        # header is 30 fixed bytes plus filename and extra fields (their
        # lengths live at header offsets 26 and 28) — leaving the central
        # directory untouched.
        name_len, extra_len = struct.unpack_from("<HH", raw, info.header_offset + 26)
        data_start = info.header_offset + 30 + name_len + extra_len
        for off in range(data_start, data_start + min(20, info.compress_size)):
            raw[off] ^= 0xFF
        corrupt = tmp_path / "corrupt.npz"
        corrupt.write_bytes(bytes(raw))
        with pytest.raises(TraceError, match="corrupt archive member|not a readable"):
            load_vm_traces(corrupt)

    def test_archive_missing_members_raises_trace_error(self, vm_traces, tmp_path):
        """An odd archive (right container, wrong members) fails loudly."""
        path = tmp_path / "odd.npz"
        np.savez_compressed(path, cores=np.array([2, 4], dtype=np.int64))
        assert zipfile.is_zipfile(path)
        with pytest.raises(TraceError, match="missing archive member"):
            load_vm_traces(path)


class TestContainerTraceIO:
    def test_roundtrip_bit_identical(self, container_traces, tmp_path):
        path = tmp_path / "containers.npz"
        save_container_traces(container_traces, path)
        loaded = load_container_traces(path)
        assert len(loaded) == len(container_traces)
        for a, b in zip(container_traces, loaded):
            assert a.container_id == b.container_id
            for field in ("mem_util", "mem_bw_util", "disk_util", "net_util"):
                got = getattr(b, field)
                assert got.dtype == np.float64
                np.testing.assert_array_equal(getattr(a, field), got)

    def test_save_load_save_is_bit_stable(self, container_traces, tmp_path):
        first, second = tmp_path / "gen1.npz", tmp_path / "gen2.npz"
        save_container_traces(container_traces, first)
        save_container_traces(load_container_traces(first), second)
        with np.load(first, allow_pickle=True) as a, np.load(second, allow_pickle=True) as b:
            assert sorted(a.files) == sorted(b.files)
            for key in a.files:
                np.testing.assert_array_equal(a[key], b[key])

    def test_new_archives_have_no_stray_allow_pickle_key(self, container_traces, tmp_path):
        path = tmp_path / "containers.npz"
        save_container_traces(container_traces, path)
        with np.load(path, allow_pickle=True) as data:
            assert "allow_pickle" not in data.files

    def test_legacy_archive_with_stray_key_loads(self, container_traces, tmp_path):
        path = tmp_path / "legacy.npz"
        payload = {
            "container_ids": np.array(
                [r.container_id for r in container_traces], dtype=object
            ),
        }
        for i, rec in enumerate(container_traces):
            payload[f"mem_{i}"] = rec.mem_util.astype(np.float32)
            payload[f"membw_{i}"] = rec.mem_bw_util.astype(np.float32)
            payload[f"disk_{i}"] = rec.disk_util.astype(np.float32)
            payload[f"net_{i}"] = rec.net_util.astype(np.float32)
        np.savez_compressed(path, **payload)
        add_stray_allow_pickle_member(path)
        loaded = load_container_traces(path)
        assert len(loaded) == len(container_traces)
        for a, b in zip(container_traces, loaded):
            np.testing.assert_allclose(a.mem_util, b.mem_util, atol=1e-6)
            np.testing.assert_allclose(a.net_util, b.net_util, atol=1e-6)

    def test_missing_file(self, tmp_path):
        with pytest.raises(TraceError):
            load_container_traces(tmp_path / "nope.npz")

    def test_truncated_archive_raises_trace_error(self, container_traces, tmp_path):
        path = tmp_path / "containers.npz"
        save_container_traces(container_traces, path)
        clipped = tmp_path / "clipped.npz"
        clipped.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
        with pytest.raises(TraceError, match="not a readable"):
            load_container_traces(clipped)

    def test_archive_missing_members_raises_trace_error(self, container_traces, tmp_path):
        path = tmp_path / "odd.npz"
        np.savez_compressed(
            path, container_ids=np.array(["c1", "c2"], dtype=object)
        )
        with pytest.raises(TraceError, match="missing archive member"):
            load_container_traces(path)