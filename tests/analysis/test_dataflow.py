"""Unit tests for the reusable taint engine and the RNG classifiers."""

from __future__ import annotations

import ast

from repro.analysis.core import ImportMap
from repro.analysis.dataflow import (
    annotation_mentions_generator,
    class_rng_fields,
    rng_call_kind,
    rng_params,
    taint_function,
)


def _fn(code: str) -> ast.FunctionDef:
    tree = ast.parse(code)
    for node in ast.walk(tree):
        if isinstance(node, ast.FunctionDef):
            return node
    raise AssertionError("no function in snippet")


def _cls(code: str) -> tuple[ast.ClassDef, ImportMap]:
    tree = ast.parse(code)
    imports = ImportMap(tree)
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            return node, imports
    raise AssertionError("no class in snippet")


def _source_calls_named(name: str):
    def is_source(expr: ast.expr):
        if (
            isinstance(expr, ast.Call)
            and isinstance(expr.func, ast.Name)
            and expr.func.id == name
        ):
            return "src"
        return None

    return is_source


class TestTaintFunction:
    def test_propagates_through_assignments(self):
        fn = _fn("def f():\n    a = make()\n    b = a\n    c = b\n")
        env = taint_function(fn, _source_calls_named("make"))
        assert set(env) == {"a", "b", "c"}

    def test_propagates_through_tuples_and_ifexp(self):
        fn = _fn(
            "def f(flag):\n"
            "    a, b = make(), 1\n"
            "    c = a if flag else None\n"
            "    d = (a, 2)\n"
        )
        env = taint_function(fn, _source_calls_named("make"))
        # Tuple unpacking is conservative: both targets taint.
        assert {"a", "b", "c", "d"} <= set(env)

    def test_method_calls_on_tainted_stay_tainted(self):
        fn = _fn("def f():\n    rng = make()\n    child = rng.spawn(1)[0]\n")
        env = taint_function(fn, _source_calls_named("make"))
        assert "child" in env

    def test_self_attributes_as_pseudo_names(self):
        fn = _fn("def __init__(self, rng):\n    self._rng = rng\n")
        env = taint_function(fn, _source_calls_named("never"), seeds={"rng": "param"})
        assert env["self._rng"] == "param"

    def test_untainted_names_stay_clean(self):
        fn = _fn("def f():\n    a = make()\n    b = 2\n    c = other()\n")
        env = taint_function(fn, _source_calls_named("make"))
        assert "b" not in env and "c" not in env

    def test_seeds_label_preserved_over_source_label(self):
        fn = _fn("def f(rng):\n    a = rng\n")
        env = taint_function(fn, _source_calls_named("make"), seeds={"rng": "param"})
        assert env["a"] == "param"


class TestRngCallKind:
    def _call(self, code: str) -> tuple[ast.Call, ImportMap]:
        tree = ast.parse(code)
        imports = ImportMap(tree)
        for node in ast.walk(tree):
            if isinstance(node, ast.Call):
                return node, imports
        raise AssertionError("no call")

    def test_unseeded(self):
        call, imports = self._call("import numpy as np\nr = np.random.default_rng()\n")
        assert rng_call_kind(call, imports) == "unseeded"

    def test_const_seed(self):
        call, imports = self._call("import numpy as np\nr = np.random.default_rng(42)\n")
        assert rng_call_kind(call, imports) == "const"

    def test_negative_const_and_tuple_seed(self):
        call, imports = self._call(
            "from numpy.random import default_rng\nr = default_rng((-1, 2))\n"
        )
        assert rng_call_kind(call, imports) == "const"

    def test_data_seed(self):
        call, imports = self._call(
            "import numpy as np\nr = np.random.default_rng(spec['seed'])\n"
        )
        assert rng_call_kind(call, imports) == "data"

    def test_non_rng_call_is_none(self):
        call, imports = self._call("import numpy as np\nr = np.asarray([1])\n")
        assert rng_call_kind(call, imports) is None


class TestRngRecognisers:
    def test_rng_params_by_name_suffix_and_annotation(self):
        fn = _fn(
            "import numpy as np\n"
            "def f(a, rng, child_rng, g: np.random.Generator, other):\n"
            "    pass\n"
        )
        assert rng_params(fn) == ["rng", "child_rng", "g"]

    def test_string_annotation_recognised(self):
        fn = _fn("def f(g: 'np.random.Generator'):\n    pass\n")
        assert rng_params(fn) == ["g"]
        assert annotation_mentions_generator(ast.parse("'Generator'", mode="eval").body)

    def test_class_rng_fields_annotated_and_init_assigned(self):
        cls, imports = _cls(
            "import numpy as np\n"
            "class Model:\n"
            "    rng: np.random.Generator\n"
            "    def __init__(self, seed, child_rng):\n"
            "        self._rng = np.random.default_rng(seed)\n"
            "        self._other = child_rng\n"
            "        self.count = 0\n"
        )
        assert class_rng_fields(cls, imports) == ["_other", "_rng", "rng"]

    def test_class_without_rng_state(self):
        cls, imports = _cls(
            "class Plain:\n"
            "    def __init__(self):\n"
            "        self.n = 0\n"
        )
        assert class_rng_fields(cls, imports) == []
