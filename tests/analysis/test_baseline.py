"""Baseline files: round-trip, matching semantics, note preservation."""

from __future__ import annotations

import json

import pytest

from repro.analysis.baseline import (
    BaselineError,
    load_baseline,
    split_baselined,
    write_baseline,
)
from repro.analysis.core import Finding


def _finding(rule="r", path="p.py", line=1, snippet="x = 1"):
    return Finding(rule=rule, path=path, line=line, message="m", snippet=snippet)


class TestRoundTrip:
    def test_write_then_load(self, tmp_path):
        f = _finding()
        target = tmp_path / "baseline.json"
        write_baseline(target, [f])
        table = load_baseline(target)
        assert f.fingerprint in table
        assert table[f.fingerprint]["rule"] == "r"
        assert table[f.fingerprint]["snippet"] == "x = 1"

    def test_duplicate_fingerprints_collapse_to_one_entry(self, tmp_path):
        # Two identical offending lines share a fingerprint by design.
        a = _finding(line=3)
        b = _finding(line=9)
        target = tmp_path / "baseline.json"
        write_baseline(target, [a, b])
        assert len(load_baseline(target)) == 1

    def test_notes_survive_rewrites(self, tmp_path):
        f = _finding()
        target = tmp_path / "baseline.json"
        write_baseline(target, [f], notes={f.fingerprint: "justified because reasons"})
        entry = load_baseline(target)[f.fingerprint]
        assert entry["note"] == "justified because reasons"


class TestMatching:
    def test_split_partitions_by_fingerprint(self, tmp_path):
        old = _finding(snippet="old_line()")
        new = _finding(snippet="new_line()")
        target = tmp_path / "baseline.json"
        write_baseline(target, [old])
        fresh, grandfathered = split_baselined([old, new], load_baseline(target))
        assert fresh == [new]
        assert grandfathered == [old]

    def test_line_moves_keep_matching(self, tmp_path):
        target = tmp_path / "baseline.json"
        write_baseline(target, [_finding(line=5)])
        moved = _finding(line=50)
        fresh, grandfathered = split_baselined([moved], load_baseline(target))
        assert fresh == [] and grandfathered == [moved]

    def test_edited_snippet_stops_matching(self, tmp_path):
        target = tmp_path / "baseline.json"
        write_baseline(target, [_finding(snippet="before()")])
        edited = _finding(snippet="after()")
        fresh, _ = split_baselined([edited], load_baseline(target))
        assert fresh == [edited]


class TestErrors:
    def test_unreadable_json(self, tmp_path):
        p = tmp_path / "b.json"
        p.write_text("not json", encoding="utf-8")
        with pytest.raises(BaselineError):
            load_baseline(p)

    def test_wrong_version(self, tmp_path):
        p = tmp_path / "b.json"
        p.write_text(json.dumps({"version": 999, "findings": []}), encoding="utf-8")
        with pytest.raises(BaselineError):
            load_baseline(p)

    def test_malformed_entry(self, tmp_path):
        p = tmp_path / "b.json"
        p.write_text(json.dumps({"version": 1, "findings": [{"rule": "r"}]}), encoding="utf-8")
        with pytest.raises(BaselineError):
            load_baseline(p)
