"""Core machinery: suppressions, fingerprints, path gating, import maps."""

from __future__ import annotations

import ast
from pathlib import Path

from repro.analysis.core import (
    Finding,
    ImportMap,
    ModuleSource,
    in_sim_path,
    is_benchmark_path,
    is_test_path,
)


def _module(text: str, rel: str = "src/repro/simulator/x.py") -> ModuleSource:
    return ModuleSource(Path("/fixture") / rel, rel, text=text)


class TestSuppressions:
    def test_line_suppression_matches_named_rule_only(self):
        m = _module("x = 1  # repro-lint: disable=no-module-rng\n")
        assert m.suppressed("no-module-rng", 1)
        assert not m.suppressed("no-wallclock", 1)
        assert not m.suppressed("no-module-rng", 2)

    def test_multiple_rules_one_comment(self):
        m = _module("x = 1  # repro-lint: disable=rule-a, rule-b\n")
        assert m.suppressed("rule-a", 1)
        assert m.suppressed("rule-b", 1)

    def test_trailing_justification_is_tolerated(self):
        m = _module("x = 1  # repro-lint: disable=rule-a (demo plug-in)\n")
        assert m.suppressed("rule-a", 1)

    def test_file_level_suppression_covers_every_line(self):
        m = _module("# repro-lint: disable-file=rule-a\nx = 1\ny = 2\n")
        assert m.suppressed("rule-a", 3)
        assert not m.suppressed("rule-b", 3)

    def test_unrelated_comments_do_not_suppress(self):
        m = _module("x = 1  # ordinary comment mentioning repro-lint\n")
        assert not m.suppressed("rule-a", 1)


class TestFindings:
    def test_fingerprint_ignores_line_numbers(self):
        a = Finding(rule="r", path="p.py", line=3, message="m", snippet="x = rand()")
        b = Finding(rule="r", path="p.py", line=99, message="m", snippet="x = rand()")
        assert a.fingerprint == b.fingerprint

    def test_fingerprint_changes_with_rule_path_and_snippet(self):
        base = Finding(rule="r", path="p.py", line=1, message="m", snippet="s")
        assert base.fingerprint != Finding(rule="q", path="p.py", line=1, message="m", snippet="s").fingerprint
        assert base.fingerprint != Finding(rule="r", path="q.py", line=1, message="m", snippet="s").fingerprint
        assert base.fingerprint != Finding(rule="r", path="p.py", line=1, message="m", snippet="t").fingerprint

    def test_format_is_clickable(self):
        f = Finding(rule="r", path="src/x.py", line=7, message="boom")
        assert f.format() == "src/x.py:7: r: boom"

    def test_module_finding_captures_snippet(self):
        m = _module("import numpy as np\nx = np.random.rand()\n")
        f = m.finding("r", 2, "msg")
        assert f.snippet == "x = np.random.rand()"
        assert f.line == 2


class TestPathGating:
    def test_sim_paths(self):
        assert in_sim_path("src/repro/simulator/cluster_sim.py")
        assert in_sim_path("src/repro/failures/models.py")
        assert in_sim_path("src/repro/scenario/sweep.py")
        assert not in_sim_path("src/repro/traces/azure.py")
        assert not in_sim_path("examples/quickstart.py")
        # "repro" and "simulator" must be *adjacent* path parts.
        assert not in_sim_path("src/repro/apps/simulator_helpers.py")

    def test_test_and_benchmark_paths(self):
        assert is_test_path("tests/simulator/test_x.py")
        assert is_benchmark_path("benchmarks/bench_x.py")
        assert not is_test_path("src/repro/simulator/x.py")


class TestSyntaxErrors:
    def test_broken_file_yields_no_tree_and_records_error(self):
        m = _module("def broken(:\n")
        assert m.tree is None
        assert m.syntax_error is not None


class TestImportMap:
    def _map(self, code: str) -> ImportMap:
        return ImportMap(ast.parse(code))

    def test_numpy_alias_chains(self):
        im = self._map("import numpy as np\n")
        node = ast.parse("np.random.rand()").body[0].value.func
        assert im.numpy_random_attr(node) == "rand"

    def test_numpy_random_submodule_alias(self):
        im = self._map("import numpy.random as npr\n")
        node = ast.parse("npr.rand()").body[0].value.func
        assert im.numpy_random_attr(node) == "rand"

    def test_from_numpy_random_import(self):
        im = self._map("from numpy.random import rand\n")
        node = ast.parse("rand()").body[0].value.func
        assert im.numpy_random_attr(node) == "rand"

    def test_stdlib_random_alias(self):
        im = self._map("import random as rnd\n")
        node = ast.parse("rnd.randint(0, 3)").body[0].value.func
        assert im.stdlib_random_attr(node) == "randint"

    def test_registry_from_import_with_rename(self):
        im = self._map("from repro.registry import register as reg\n")
        node = ast.parse("reg('policy', 'x')").body[0].value.func
        assert im.registry_call(node) == "register"

    def test_registry_module_alias(self):
        im = self._map("from repro import registry\n")
        node = ast.parse("registry.create('policy', 'x')").body[0].value.func
        assert im.registry_call(node) == "create"

    def test_unrelated_names_resolve_to_none(self):
        im = self._map("import numpy as np\n")
        node = ast.parse("self.rng.random()").body[0].value.func
        assert im.numpy_random_attr(node) is None
        assert im.stdlib_random_attr(node) is None
