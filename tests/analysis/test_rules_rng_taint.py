"""Fixture tests for the whole-program ``rng-taint`` rule."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.baseline import write_baseline
from repro.analysis.runner import run_lint


def _lint(root: Path, *, select=("rng-taint",), baseline=None, extra_paths=()):
    return run_lint(
        [root / "src", *[root / p for p in extra_paths]],
        root=root,
        select=list(select),
        baseline_path=baseline,
    )


class TestPositive:
    def test_cross_module_const_reseed_below_threaded_caller(self, make_repo):
        """The headline true positive: a seeded rng threaded into one module
        is silently replaced by a fixed stream in a helper two calls away.
        Every per-file rule passes this code — ``no-module-rng`` allows
        ``default_rng(0)`` lexically — only the call graph sees it."""
        root = make_repo(
            {
                "src/repro/simulator/run.py": (
                    "import numpy as np\n"
                    "from repro.simulator.noise import perturb\n"
                    "def run(events, rng: np.random.Generator):\n"
                    "    return [perturb(e) for e in events]\n"
                ),
                "src/repro/simulator/noise.py": (
                    "import numpy as np\n"
                    "def perturb(e):\n"
                    "    rng = np.random.default_rng(0)\n"
                    "    return e + rng.normal()\n"
                ),
            }
        )
        report = _lint(root)
        assert len(report.findings) == 1
        f = report.findings[0]
        assert f.rule == "rng-taint"
        assert f.path == "src/repro/simulator/noise.py"
        assert "perturb <- run" in f.message
        # No per-file rule sees anything wrong with either module.
        per_file = run_lint([root / "src"], root=root, baseline_path=None,
                            select=["no-module-rng"])
        assert per_file.findings == []

    def test_reseed_inside_threaded_function(self, make_repo):
        root = make_repo(
            {
                "src/repro/failures/model.py": (
                    "import numpy as np\n"
                    "def events(horizon, rng):\n"
                    "    local = np.random.default_rng(7)\n"
                    "    return local.exponential(size=3)\n"
                )
            }
        )
        report = _lint(root)
        assert [f.rule for f in report.findings] == ["rng-taint"]
        assert "holds a threaded rng" in report.findings[0].message

    def test_module_level_generator_state(self, make_repo):
        """Seeded module-scope rngs pass ``no-module-rng`` (``default_rng``
        is on its allow-list) — only the whole-program rule flags the
        shared-state hazard."""
        root = make_repo(
            {
                "src/repro/scenario/state.py": (
                    "import numpy as np\nRNG = np.random.default_rng(42)\n"
                )
            }
        )
        report = _lint(root, select=("rng-taint", "no-module-rng"))
        assert [f.rule for f in report.findings] == ["rng-taint"]
        assert "module-level generator 'RNG'" in report.findings[0].message

    def test_unseeded_default_rng_subsumed_from_lexical_rule(self, make_repo):
        root = make_repo(
            {
                "src/repro/runtime/jitter.py": (
                    "import numpy as np\n"
                    "def backoff():\n"
                    "    return np.random.default_rng().uniform()\n"
                )
            }
        )
        report = _lint(root, select=("rng-taint", "no-module-rng"))
        # rng-taint owns the finding in taint-covered paths; the lexical
        # gate stays silent there (no double report).
        assert [f.rule for f in report.findings] == ["rng-taint"]
        assert "unseeded" in report.findings[0].message

    def test_rng_as_parameter_default(self, make_repo):
        root = make_repo(
            {
                "src/repro/simulator/api.py": (
                    "import numpy as np\n"
                    "def sample(n, rng=np.random.default_rng(3)):\n"
                    "    return rng.uniform(size=n)\n"
                )
            }
        )
        report = _lint(root)
        assert any("parameter default" in f.message for f in report.findings)


class TestNegative:
    def test_threaded_discipline_is_clean(self, make_repo):
        root = make_repo(
            {
                "src/repro/simulator/good.py": (
                    "import numpy as np\n"
                    "def run(spec):\n"
                    "    rng = np.random.default_rng(spec['seed'])\n"
                    "    return step(rng)\n"
                    "def step(rng):\n"
                    "    return rng.normal()\n"
                )
            }
        )
        assert _lint(root).findings == []

    def test_const_seed_outside_covered_paths_not_flagged(self, make_repo):
        # Demo/example code outside repro/{simulator,failures,scenario,
        # runtime} is out of this rule's jurisdiction.
        root = make_repo(
            {
                "src/repro/traces/demo.py": (
                    "import numpy as np\n"
                    "def demo(rng):\n"
                    "    return np.random.default_rng(1).uniform()\n"
                )
            }
        )
        assert _lint(root).findings == []

    def test_unseeded_outside_covered_paths_still_lexically_caught(self, make_repo):
        # Retiring the gate must not lose coverage elsewhere.
        root = make_repo(
            {
                "src/repro/traces/demo.py": (
                    "import numpy as np\n"
                    "def demo():\n"
                    "    return np.random.default_rng().uniform()\n"
                )
            }
        )
        report = _lint(root, select=("rng-taint", "no-module-rng"))
        assert [f.rule for f in report.findings] == ["no-module-rng"]


class TestSuppressionAndBaseline:
    _BAD = (
        "import numpy as np\n"
        "def events(horizon, rng):\n"
        "    local = np.random.default_rng(7)  {comment}\n"
        "    return local.exponential(size=3)\n"
    )

    def test_same_line_suppression(self, make_repo):
        root = make_repo(
            {
                "src/repro/failures/model.py": self._BAD.format(
                    comment="# repro-lint: disable=rng-taint"
                )
            }
        )
        report = _lint(root)
        assert report.findings == [] and report.suppressed == 1

    def test_baseline_grandfathers_finding(self, make_repo, tmp_path):
        root = make_repo({"src/repro/failures/model.py": self._BAD.format(comment="")})
        baseline = tmp_path / "baseline.json"
        first = _lint(root)
        write_baseline(baseline, first.findings, {})
        second = _lint(root, baseline=baseline)
        assert second.findings == []
        assert [f.rule for f in second.baselined] == ["rng-taint"]


@pytest.mark.parametrize("rule", ["rng-taint"])
def test_rule_is_registered(rule):
    from repro.registry import names

    assert rule in names("lint")
