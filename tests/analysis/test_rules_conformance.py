"""Fixture tests for the ``hook-conformance`` protocol checker."""

from __future__ import annotations

from pathlib import Path

from repro.analysis.baseline import write_baseline
from repro.analysis.runner import run_lint

#: Minimal protocol bases at their canonical homes; the rule finds them
#: by class name with a module-prefix preference, exactly as in-tree.
_BASES = {
    "src/repro/simulator/components.py": (
        "class MetricsCollector:\n"
        "    def on_admit(self, t, vm):\n"
        "        pass\n"
        "    def on_preempt(self, t, vm):\n"
        "        pass\n"
        "    def merge_shards(self, shards):\n"
        "        pass\n"
        "    def finalize(self):\n"
        "        return {}\n"
    ),
    "src/repro/scenario/engine.py": (
        "class Engine:\n"
        "    def run(self, scenario):\n"
        "        raise NotImplementedError\n"
    ),
    "src/repro/failures/models.py": (
        "class FailureModel:\n"
        "    def events(self, n_servers, horizon, rng):\n"
        "        raise NotImplementedError\n"
    ),
}


def _lint(root: Path, *, baseline=None):
    return run_lint(
        [root / "src"], root=root, select=["hook-conformance"], baseline_path=baseline
    )


def _repo(make_repo, component: str):
    return make_repo({**_BASES, "src/pkg/component.py": component})


class TestPositive:
    def test_misspelled_hook_is_reported(self, make_repo):
        """The true positive no per-file rule catches: ``merge_shard`` is a
        perfectly valid method name in isolation — only comparison against
        the ``MetricsCollector`` protocol (defined in another module)
        reveals it will never be dispatched."""
        root = _repo(
            make_repo,
            "from repro.registry import register\n"
            "@register('metrics', 'demo')\n"
            "class Demo:\n"
            "    def merge_shard(self, shards):\n"
            "        pass\n",
        )
        report = _lint(root)
        assert len(report.findings) == 1
        assert "misspelling of protocol hook merge_shards()" in report.findings[0].message

    def test_unknown_on_hook_is_reported(self, make_repo):
        root = _repo(
            make_repo,
            "from repro.registry import register\n"
            "@register('metrics', 'demo')\n"
            "class Demo:\n"
            "    def on_vm_arrival(self, t, vm):\n"
            "        pass\n",
        )
        report = _lint(root)
        assert any("not a hook" in f.message for f in report.findings)

    def test_arity_mismatch_is_reported(self, make_repo):
        root = _repo(
            make_repo,
            "from repro.registry import register\n"
            "@register('metrics', 'demo')\n"
            "class Demo:\n"
            "    def on_admit(self, t, vm, extra):\n"
            "        pass\n",
        )
        report = _lint(root)
        assert any("will raise TypeError when dispatched" in f.message
                   for f in report.findings)

    def test_engine_without_run_is_reported(self, make_repo):
        root = _repo(
            make_repo,
            "from repro.registry import register\n"
            "@register('engine', 'demo')\n"
            "class DemoEngine:\n"
            "    def execute(self, scenario):\n"
            "        pass\n",
        )
        report = _lint(root)
        assert any("required method run()" in f.message for f in report.findings)

    def test_failure_model_without_events_is_reported(self, make_repo):
        root = _repo(
            make_repo,
            "from repro.registry import register\n"
            "@register('failure', 'demo')\n"
            "class DemoFailure:\n"
            "    def sample(self, n_servers, horizon, rng):\n"
            "        pass\n",
        )
        report = _lint(root)
        assert any("required method events()" in f.message for f in report.findings)


class TestNegative:
    def test_conforming_collector_is_clean(self, make_repo):
        root = _repo(
            make_repo,
            "from repro.registry import register\n"
            "@register('metrics', 'demo')\n"
            "class Demo:\n"
            "    def on_admit(self, t, vm):\n"
            "        pass\n"
            "    def merge_shards(self, shards):\n"
            "        pass\n"
            "    def finalize(self):\n"
            "        return {'n': 0}\n",
        )
        assert _lint(root).findings == []

    def test_inherited_run_satisfies_engine_protocol(self, make_repo):
        root = _repo(
            make_repo,
            "from repro.registry import register\n"
            "from repro.scenario.engine import Engine\n"
            "@register('engine', 'demo')\n"
            "class DemoEngine(Engine):\n"
            "    pass\n",
        )
        assert _lint(root).findings == []

    def test_extra_defaults_and_varargs_are_fine(self, make_repo):
        root = _repo(
            make_repo,
            "from repro.registry import register\n"
            "@register('metrics', 'demo')\n"
            "class Demo:\n"
            "    def on_admit(self, t, vm, detail=None):\n"
            "        pass\n"
            "    def on_preempt(self, *args):\n"
            "        pass\n",
        )
        assert _lint(root).findings == []

    def test_private_helpers_and_other_kinds_ignored(self, make_repo):
        root = _repo(
            make_repo,
            "from repro.registry import register\n"
            "@register('policy', 'demo')\n"
            "class Demo:\n"
            "    def on_anything(self):\n"
            "        pass\n"
            "@register('metrics', 'demo2')\n"
            "class Demo2:\n"
            "    def _on_internal(self, t):\n"
            "        pass\n"
            "    def finalize(self):\n"
            "        return {}\n",
        )
        assert _lint(root).findings == []

    def test_partial_lint_without_base_is_silent(self, make_repo):
        # Base protocol class not in the linted tree: skip, don't guess.
        root = make_repo(
            {
                "src/pkg/component.py": (
                    "from repro.registry import register\n"
                    "@register('metrics', 'demo')\n"
                    "class Demo:\n"
                    "    def merge_shard(self, shards):\n"
                    "        pass\n"
                )
            }
        )
        assert _lint(root).findings == []


class TestSuppressionAndBaseline:
    _BAD = (
        "from repro.registry import register\n"
        "@register('metrics', 'demo')\n"
        "class Demo:\n"
        "    def merge_shard(self, shards):  {comment}\n"
        "        pass\n"
    )

    def test_same_line_suppression(self, make_repo):
        root = _repo(
            make_repo,
            self._BAD.format(comment="# repro-lint: disable=hook-conformance"),
        )
        report = _lint(root)
        assert report.findings == [] and report.suppressed == 1

    def test_baseline_grandfathers_finding(self, make_repo, tmp_path):
        root = _repo(make_repo, self._BAD.format(comment=""))
        baseline = tmp_path / "baseline.json"
        write_baseline(baseline, _lint(root).findings, {})
        report = _lint(root, baseline=baseline)
        assert report.findings == []
        assert [f.rule for f in report.baselined] == ["hook-conformance"]
