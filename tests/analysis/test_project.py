"""Unit tests for the whole-program ``ProjectIndex``.

The index is the substrate every repo-scope rule stands on, so its
degradation modes matter as much as its happy path: import cycles must
not loop, namespace packages (no ``__init__.py``) must index like any
other directory, and a module with a syntax error must degrade to a
*partial* index — skipped and listed, never a crash.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis.core import ModuleSource
from repro.analysis.project import ClassInfo, FunctionInfo, ProjectIndex, module_name_for


def _index(files: dict[str, str]) -> ProjectIndex:
    modules = [
        ModuleSource(Path("/fixture") / rel, rel, text=text)
        for rel, text in sorted(files.items())
    ]
    return ProjectIndex(modules)


class TestModuleNames:
    def test_src_prefix_stripped(self):
        assert module_name_for("src/repro/scenario/sweep.py") == "repro.scenario.sweep"

    def test_init_names_its_package(self):
        assert module_name_for("src/repro/analysis/__init__.py") == "repro.analysis"

    def test_non_src_paths_get_stable_names(self):
        assert module_name_for("examples/quickstart.py") == "examples.quickstart"


class TestGraphs:
    def test_import_edges_and_bindings(self):
        idx = _index(
            {
                "src/pkg/a.py": "from pkg.b import helper\nimport pkg.c as c\n",
                "src/pkg/b.py": "def helper():\n    return 1\n",
                "src/pkg/c.py": "X = 1\n",
            }
        )
        assert idx.imports["pkg.a"] == {"pkg.b", "pkg.c"}
        assert idx.bindings["pkg.a"]["helper"] == "pkg.b.helper"
        assert idx.bindings["pkg.a"]["c"] == "pkg.c"

    def test_import_cycle_does_not_loop(self):
        idx = _index(
            {
                "src/pkg/a.py": "from pkg.b import g\ndef f():\n    return g()\n",
                "src/pkg/b.py": "from pkg.a import f\ndef g():\n    return f()\n",
            }
        )
        assert idx.imports["pkg.a"] == {"pkg.b"}
        assert idx.imports["pkg.b"] == {"pkg.a"}
        # Call graph through the cycle terminates and reaches both sides.
        order = idx.reachable_from(["pkg.a.f"])
        assert order == ["pkg.a.f", "pkg.b.g"]

    def test_relative_imports_resolve(self):
        idx = _index(
            {
                "src/pkg/__init__.py": "",
                "src/pkg/sub/__init__.py": "",
                "src/pkg/sub/a.py": "from . import b\nfrom ..top import thing\n",
                "src/pkg/sub/b.py": "def inner():\n    return 0\n",
                "src/pkg/top.py": "def thing():\n    return 0\n",
            }
        )
        assert idx.bindings["pkg.sub.a"]["b"] == "pkg.sub.b"
        assert idx.bindings["pkg.sub.a"]["thing"] == "pkg.top.thing"

    def test_namespace_package_indexes_normally(self):
        # No __init__.py anywhere: still indexed, still resolvable.
        idx = _index(
            {
                "src/ns/mod.py": "from ns.other import f\ndef g():\n    return f()\n",
                "src/ns/other.py": "def f():\n    return 1\n",
            }
        )
        assert "ns.mod" in idx.modules
        assert idx.callees("ns.mod.g") == {"ns.other.f"}


class TestPartialIndex:
    def test_syntax_error_module_is_skipped_not_fatal(self):
        idx = _index(
            {
                "src/pkg/ok.py": "def fine():\n    return 1\n",
                "src/pkg/broken.py": "def broken(:\n",
            }
        )
        assert "pkg.ok" in idx.modules
        assert "pkg.broken" not in idx.modules
        assert [m.rel for m in idx.skipped] == ["src/pkg/broken.py"]
        # Resolution against the missing module degrades to None.
        assert idx.resolve("pkg.broken.broken") is None


class TestSymbols:
    def test_classes_functions_and_methods(self):
        idx = _index(
            {
                "src/pkg/m.py": (
                    "class Base:\n"
                    "    def hook(self):\n"
                    "        return 0\n"
                    "class Child(Base):\n"
                    "    def own(self):\n"
                    "        return self.hook()\n"
                )
            }
        )
        assert isinstance(idx.resolve("pkg.m.Child"), ClassInfo)
        assert isinstance(idx.resolve("pkg.m.Child.own"), FunctionInfo)
        child = idx.classes["pkg.m.Child"]
        assert sorted(idx.mro_methods(child)) == ["hook", "own"]
        assert idx.callees("pkg.m.Child.own") == {"pkg.m.Base.hook"} or idx.callees(
            "pkg.m.Child.own"
        ) == {"pkg.m.Child.hook"}

    def test_reexport_resolution(self):
        idx = _index(
            {
                "src/pkg/__init__.py": "from pkg.impl import Thing\n",
                "src/pkg/impl.py": "class Thing:\n    pass\n",
                "src/use.py": "from pkg import Thing\nt = Thing()\n",
            }
        )
        resolved = idx.resolve("pkg.Thing")
        assert isinstance(resolved, ClassInfo)
        assert resolved.qualname == "pkg.impl.Thing"

    def test_module_globals_collected_at_top_level_only(self):
        idx = _index(
            {
                "src/pkg/m.py": (
                    "CACHE = {}\n"
                    "LIMIT: int = 3\n"
                    "def f():\n"
                    "    local = {}\n"
                    "    return local\n"
                )
            }
        )
        assert sorted(idx.module_globals["pkg.m"]) == ["CACHE", "LIMIT"]

    def test_registrations_carry_decorated_target(self):
        idx = _index(
            {
                "src/pkg/m.py": (
                    "from repro.registry import register\n"
                    "@register('policy', 'demo')\n"
                    "class Demo:\n"
                    "    pass\n"
                    "register_happens_once = None\n"
                )
            }
        )
        regs = [(r.kind, r.name, r.target) for r in idx.registrations]
        assert regs == [("policy", "demo", "pkg.m.Demo")]

    def test_class_call_resolves_to_constructor(self):
        idx = _index(
            {
                "src/pkg/m.py": (
                    "class Widget:\n"
                    "    def __init__(self):\n"
                    "        self.x = 1\n"
                    "def build():\n"
                    "    return Widget()\n"
                )
            }
        )
        assert idx.callees("pkg.m.build") == {"pkg.m.Widget.__init__"}
