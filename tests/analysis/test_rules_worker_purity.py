"""Fixture tests for the whole-program ``worker-purity`` race detector."""

from __future__ import annotations

from pathlib import Path

from repro.analysis.baseline import write_baseline
from repro.analysis.runner import run_lint

#: A stand-in supervisor module so fixtures resolve ``supervised_map``
#: the same way real code does (the rule matches the qualified name).
_SUPERVISOR = (
    "def supervised_map(fn, items, *, workers=None, initializer=None):\n"
    "    return [fn(i) for i in items]\n"
)


def _lint(root: Path, *, baseline=None):
    return run_lint(
        [root / "src"], root=root, select=["worker-purity"], baseline_path=baseline
    )


def _repo(make_repo, work_py: str, extra: dict | None = None):
    files = {
        "src/repro/runtime/supervisor.py": _SUPERVISOR,
        "src/pkg/work.py": work_py,
    }
    files.update(extra or {})
    return make_repo(files)


class TestPositive:
    def test_worker_appends_to_module_global(self, make_repo):
        root = _repo(
            make_repo,
            "from repro.runtime.supervisor import supervised_map\n"
            "_SEEN = []\n"
            "def worker(item):\n"
            "    _SEEN.append(item)\n"
            "    return len(_SEEN)\n"
            "def run(items):\n"
            "    return supervised_map(worker, items, workers=2)\n",
        )
        report = _lint(root)
        assert len(report.findings) == 1
        f = report.findings[0]
        assert f.rule == "worker-purity"
        assert ".append() on module global pkg.work._SEEN" in f.message
        assert "worker()" in f.message

    def test_write_reached_transitively_names_the_worker(self, make_repo):
        """The true positive no per-file rule can catch: the impure write
        is two modules away from the ``supervised_map`` call site, linked
        only through the call graph."""
        root = _repo(
            make_repo,
            "from repro.runtime.supervisor import supervised_map\n"
            "from pkg.helper import record\n"
            "def worker(item):\n"
            "    return record(item)\n"
            "def run(items):\n"
            "    return supervised_map(worker, items)\n",
            extra={
                "src/pkg/helper.py": (
                    "from pkg.state import CACHE\n"
                    "def record(item):\n"
                    "    CACHE[item] = True\n"
                    "    return item\n"
                ),
                "src/pkg/state.py": "CACHE = {}\n",
            },
        )
        report = _lint(root)
        assert len(report.findings) == 1
        f = report.findings[0]
        assert f.path == "src/pkg/helper.py"
        assert "pkg.state.CACHE" in f.message
        assert "reached from worker worker()" in f.message

    def test_global_statement_write(self, make_repo):
        root = _repo(
            make_repo,
            "from repro.runtime.supervisor import supervised_map\n"
            "TOTAL = 0\n"
            "def worker(item):\n"
            "    global TOTAL\n"
            "    TOTAL += 1\n"
            "    return TOTAL\n"
            "def run(items):\n"
            "    return supervised_map(worker, items)\n",
        )
        assert any("writes global 'TOTAL'" in f.message for f in _lint(root).findings)

    def test_lambda_worker_flagged(self, make_repo):
        root = _repo(
            make_repo,
            "from repro.runtime.supervisor import supervised_map\n"
            "def run(items):\n"
            "    return supervised_map(lambda i: i + 1, items)\n",
        )
        assert any("lambda" in f.message for f in _lint(root).findings)

    def test_closure_worker_flagged(self, make_repo):
        root = _repo(
            make_repo,
            "from repro.runtime.supervisor import supervised_map\n"
            "def run(items, offset):\n"
            "    def worker(i):\n"
            "        return i + offset\n"
            "    return supervised_map(worker, items)\n",
        )
        assert any("defined inside another function" in f.message
                   for f in _lint(root).findings)

    def test_mutable_default_argument_written(self, make_repo):
        root = _repo(
            make_repo,
            "from repro.runtime.supervisor import supervised_map\n"
            "def worker(item, acc=[]):\n"
            "    acc.append(item)\n"
            "    return len(acc)\n"
            "def run(items):\n"
            "    return supervised_map(worker, items)\n",
        )
        assert any("mutable default argument 'acc'" in f.message
                   for f in _lint(root).findings)

    def test_impure_initializer_slot_checked(self, make_repo):
        root = _repo(
            make_repo,
            "from repro.runtime.supervisor import supervised_map\n"
            "STATE = {}\n"
            "def prime():\n"
            "    STATE['ready'] = True\n"
            "def worker(item):\n"
            "    return item\n"
            "def run(items):\n"
            "    return supervised_map(worker, items, initializer=prime)\n",
        )
        assert any("pkg.work.STATE" in f.message for f in _lint(root).findings)


class TestNegative:
    def test_pure_worker_is_clean(self, make_repo):
        root = _repo(
            make_repo,
            "from repro.runtime.supervisor import supervised_map\n"
            "LIMITS = {'max': 10}\n"
            "def worker(item):\n"
            "    local = []\n"
            "    local.append(item)\n"
            "    return min(item, LIMITS['max'])\n"
            "def run(items):\n"
            "    return supervised_map(worker, items)\n",
        )
        assert _lint(root).findings == []

    def test_local_shadow_of_global_name_is_clean(self, make_repo):
        root = _repo(
            make_repo,
            "from repro.runtime.supervisor import supervised_map\n"
            "CACHE = {}\n"
            "def worker(item):\n"
            "    CACHE = {}\n"
            "    CACHE[item] = True\n"
            "    return CACHE\n"
            "def run(items):\n"
            "    return supervised_map(worker, items)\n",
        )
        assert _lint(root).findings == []

    def test_parent_side_mutation_not_flagged(self, make_repo):
        # Mutating shared state *outside* the worker closure (in the
        # caller, or in on_complete) is the parent's business.
        root = _repo(
            make_repo,
            "from repro.runtime.supervisor import supervised_map\n"
            "RESULTS = []\n"
            "def worker(item):\n"
            "    return item * 2\n"
            "def run(items):\n"
            "    out = supervised_map(worker, items)\n"
            "    RESULTS.extend(out)\n"
            "    return RESULTS\n",
        )
        assert _lint(root).findings == []


class TestSuppressionAndBaseline:
    _BAD = (
        "from repro.runtime.supervisor import supervised_map\n"
        "_SEEN = []\n"
        "def worker(item):\n"
        "    _SEEN.append(item)  {comment}\n"
        "    return item\n"
        "def run(items):\n"
        "    return supervised_map(worker, items)\n"
    )

    def test_same_line_suppression(self, make_repo):
        root = _repo(
            make_repo,
            self._BAD.format(comment="# repro-lint: disable=worker-purity"),
        )
        report = _lint(root)
        assert report.findings == [] and report.suppressed == 1

    def test_baseline_grandfathers_finding(self, make_repo, tmp_path):
        root = _repo(make_repo, self._BAD.format(comment=""))
        baseline = tmp_path / "baseline.json"
        write_baseline(baseline, _lint(root).findings, {})
        report = _lint(root, baseline=baseline)
        assert report.findings == []
        assert [f.rule for f in report.baselined] == ["worker-purity"]
