"""Fixture tests for the determinism rules.

Each rule gets positives (must fire), negatives (must stay silent), and
the sanctioned idioms the simulation core actually uses.
"""

from __future__ import annotations

SIM = "src/repro/simulator/snippet.py"
FAIL = "src/repro/failures/snippet.py"
SCEN = "src/repro/scenario/snippet.py"
OUTSIDE = "src/repro/traces/snippet.py"


class TestNoModuleRng:
    def test_numpy_module_draw_fires(self, lint_snippet):
        hits = lint_snippet("import numpy as np\nx = np.random.rand(3)\n", "no-module-rng")
        assert len(hits) == 1 and hits[0].line == 2

    def test_numpy_seed_fires(self, lint_snippet):
        hits = lint_snippet("import numpy as np\nnp.random.seed(0)\n", "no-module-rng")
        assert len(hits) == 1

    def test_submodule_alias_fires(self, lint_snippet):
        code = "import numpy.random as npr\nx = npr.normal(size=4)\n"
        assert len(lint_snippet(code, "no-module-rng")) == 1

    def test_from_import_fires(self, lint_snippet):
        code = "from numpy.random import shuffle\nshuffle([1, 2])\n"
        assert len(lint_snippet(code, "no-module-rng")) == 1

    def test_stdlib_random_fires(self, lint_snippet):
        code = "import random\nx = random.random()\n"
        assert len(lint_snippet(code, "no-module-rng")) == 1

    def test_stdlib_from_import_fires(self, lint_snippet):
        code = "from random import randint\nx = randint(0, 3)\n"
        assert len(lint_snippet(code, "no-module-rng")) == 1

    def test_unseeded_default_rng_fires_outside_taint_paths(self, lint_snippet):
        # Inside taint-covered paths the whole-program rng-taint rule owns
        # this check (see test_rules_rng_taint.py); lexically it still
        # fires everywhere else.
        code = "import numpy as np\nrng = np.random.default_rng()\n"
        hits = lint_snippet(code, "no-module-rng", rel=OUTSIDE)
        assert len(hits) == 1 and "unseeded" in hits[0].message

    def test_seeded_default_rng_is_clean(self, lint_snippet):
        code = "import numpy as np\nrng = np.random.default_rng(42)\n"
        assert lint_snippet(code, "no-module-rng") == []

    def test_passed_generator_draws_are_clean(self, lint_snippet):
        code = (
            "import numpy as np\n"
            "def events(n, rng: np.random.Generator):\n"
            "    return rng.exponential(1.0, size=n)\n"
        )
        assert lint_snippet(code, "no-module-rng") == []

    def test_seeded_random_random_instance_is_clean(self, lint_snippet):
        code = "import random\nr = random.Random(7)\n"
        assert lint_snippet(code, "no-module-rng") == []

    def test_system_random_fires(self, lint_snippet):
        code = "import random\nr = random.SystemRandom()\n"
        assert len(lint_snippet(code, "no-module-rng")) == 1

    def test_fires_outside_sim_paths_too(self, lint_snippet):
        code = "import numpy as np\nx = np.random.rand()\n"
        assert len(lint_snippet(code, "no-module-rng", rel="examples/demo.py")) == 1

    def test_unrelated_attribute_chains_are_clean(self, lint_snippet):
        code = "import numpy as np\nclass T:\n    def f(self, rng):\n        return rng.random()\n"
        assert lint_snippet(code, "no-module-rng") == []


class TestNoWallclock:
    def test_time_time_fires_in_sim_core(self, lint_snippet):
        code = "import time\nt = time.time()\n"
        assert len(lint_snippet(code, "no-wallclock", rel=SIM)) == 1

    def test_from_time_import_fires(self, lint_snippet):
        code = "from time import perf_counter\nt = perf_counter()\n"
        assert len(lint_snippet(code, "no-wallclock", rel=FAIL)) == 1

    def test_datetime_now_fires(self, lint_snippet):
        code = "import datetime\nt = datetime.datetime.now()\n"
        assert len(lint_snippet(code, "no-wallclock", rel=SCEN)) == 1

    def test_imported_datetime_class_fires(self, lint_snippet):
        code = "from datetime import datetime\nt = datetime.now()\n"
        assert len(lint_snippet(code, "no-wallclock", rel=SIM)) == 1

    def test_outside_sim_core_is_exempt(self, lint_snippet):
        # experiments/runner.py times sweeps with perf_counter — legitimate.
        code = "import time\nt = time.time()\n"
        assert lint_snippet(code, "no-wallclock", rel="src/repro/experiments/runner.py") == []

    def test_time_as_event_variable_is_clean(self, lint_snippet):
        code = "def step(queue):\n    t = queue.peek_time()\n    return t\n"
        assert lint_snippet(code, "no-wallclock", rel=SIM) == []


class TestNoSetIteration:
    def test_for_over_set_call_fires(self, lint_snippet):
        code = "def f(xs):\n    for x in set(xs):\n        print(x)\n"
        assert len(lint_snippet(code, "no-set-iteration", rel=SIM)) == 1

    def test_for_over_set_literal_fires(self, lint_snippet):
        code = "for x in {3, 1, 2}:\n    pass\n"
        assert len(lint_snippet(code, "no-set-iteration", rel=FAIL)) == 1

    def test_comprehension_over_set_fires(self, lint_snippet):
        code = "def f(xs):\n    return [x for x in set(xs)]\n"
        assert len(lint_snippet(code, "no-set-iteration", rel=SCEN)) == 1

    def test_list_of_set_fires(self, lint_snippet):
        code = "def f(xs):\n    return list(set(xs))\n"
        assert len(lint_snippet(code, "no-set-iteration", rel=SIM)) == 1

    def test_sorted_set_is_clean(self, lint_snippet):
        code = "def f(xs):\n    for x in sorted(set(xs)):\n        print(x)\n"
        assert lint_snippet(code, "no-set-iteration", rel=SIM) == []

    def test_membership_tests_are_clean(self, lint_snippet):
        code = "def f(x, xs):\n    return x in set(xs)\n"
        assert lint_snippet(code, "no-set-iteration", rel=SIM) == []

    def test_outside_sim_core_is_exempt(self, lint_snippet):
        code = "for x in set([1]):\n    pass\n"
        assert lint_snippet(code, "no-set-iteration", rel=OUTSIDE) == []
