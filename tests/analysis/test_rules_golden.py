"""Fixture tests for the golden-freeze rule."""

from __future__ import annotations

REF = "src/repro/simulator/reference.py"
WREF = "src/repro/core/waterfill_reference.py"
PROD = "src/repro/simulator/cluster_sim.py"

_FROZEN_HEADER = '"""Reference simulator. Do not optimize this module."""\n'


class TestImportBans:
    def test_plain_import_fires(self, lint_snippet):
        code = "import repro.simulator.reference\n"
        hits = lint_snippet(code, "golden-freeze", rel=PROD)
        assert len(hits) == 1 and "golden reference" in hits[0].message

    def test_from_module_import_fires(self, lint_snippet):
        code = "from repro.simulator.reference import simulate\n"
        assert len(lint_snippet(code, "golden-freeze", rel=PROD)) == 1

    def test_from_package_import_reference_fires(self, lint_snippet):
        code = "from repro.simulator import reference\n"
        assert len(lint_snippet(code, "golden-freeze", rel=PROD)) == 1

    def test_tests_may_import_it(self, lint_snippet):
        code = "from repro.simulator import reference\n"
        assert lint_snippet(code, "golden-freeze", rel="tests/golden/test_ref.py") == []

    def test_benchmarks_may_import_it(self, lint_snippet):
        code = "import repro.simulator.reference\n"
        assert lint_snippet(code, "golden-freeze", rel="benchmarks/bench_ref.py") == []

    def test_sibling_imports_are_clean(self, lint_snippet):
        code = "from repro.simulator import components\n"
        assert lint_snippet(code, "golden-freeze", rel=PROD) == []


class TestWaterfillReferenceImportBans:
    """The pinned water-fill bisection is frozen under the same rule."""

    def test_plain_import_fires(self, lint_snippet):
        code = "import repro.core.waterfill_reference\n"
        hits = lint_snippet(code, "golden-freeze", rel=PROD)
        assert len(hits) == 1 and "waterfill_reference" in hits[0].message

    def test_from_module_import_fires(self, lint_snippet):
        code = "from repro.core.waterfill_reference import waterfill_reclaim_bisect\n"
        assert len(lint_snippet(code, "golden-freeze", rel=PROD)) == 1

    def test_from_package_import_reference_fires(self, lint_snippet):
        code = "from repro.core import waterfill_reference\n"
        assert len(lint_snippet(code, "golden-freeze", rel=PROD)) == 1

    def test_live_solver_in_same_package_is_clean(self, lint_snippet):
        code = "from repro.core import deflation\nfrom repro.core.deflation import get_policy\n"
        assert lint_snippet(code, "golden-freeze", rel=PROD) == []

    def test_tests_may_import_it(self, lint_snippet):
        code = "from repro.core.waterfill_reference import waterfill_reclaim_bisect\n"
        rel = "tests/core/test_waterfill_equivalence.py"
        assert lint_snippet(code, "golden-freeze", rel=rel) == []

    def test_benchmarks_may_import_it(self, lint_snippet):
        code = "import repro.core.waterfill_reference\n"
        assert lint_snippet(code, "golden-freeze", rel="benchmarks/bench_wf.py") == []


class TestReferenceFileItself:
    def test_clean_frozen_file_passes(self, lint_snippet):
        assert lint_snippet(_FROZEN_HEADER + "x = 1\n", "golden-freeze", rel=REF) == []

    def test_suppression_comment_in_reference_fires_unsuppressibly(self, lint_snippet):
        code = _FROZEN_HEADER + "x = 1  # repro-lint: disable=golden-freeze\n"
        hits = lint_snippet(code, "golden-freeze", rel=REF)
        assert len(hits) == 1
        assert hits[0].suppressible is False

    def test_missing_sentinel_fires_unsuppressibly(self, lint_snippet):
        hits = lint_snippet('"""Reference simulator."""\nx = 1\n', "golden-freeze", rel=REF)
        assert len(hits) == 1
        assert "sentinel" in hits[0].message
        assert hits[0].suppressible is False

    def test_real_reference_module_is_clean_at_head(self, lint_snippet, repo_root):
        ref = repo_root / "src" / "repro" / "simulator" / "reference.py"
        hits = lint_snippet(
            ref.read_text(encoding="utf-8"), "golden-freeze", rel=REF
        )
        assert hits == []


class TestWaterfillReferenceFileItself:
    def test_clean_frozen_file_passes(self, lint_snippet):
        assert lint_snippet(_FROZEN_HEADER + "x = 1\n", "golden-freeze", rel=WREF) == []

    def test_suppression_comment_fires_unsuppressibly(self, lint_snippet):
        code = _FROZEN_HEADER + "x = 1  # repro-lint: disable=golden-freeze\n"
        hits = lint_snippet(code, "golden-freeze", rel=WREF)
        assert len(hits) == 1
        assert hits[0].suppressible is False

    def test_missing_sentinel_fires_unsuppressibly(self, lint_snippet):
        hits = lint_snippet('"""Pinned bisection."""\nx = 1\n', "golden-freeze", rel=WREF)
        assert len(hits) == 1
        assert "sentinel" in hits[0].message
        assert hits[0].suppressible is False

    def test_real_waterfill_reference_is_clean_at_head(self, lint_snippet, repo_root):
        ref = repo_root / "src" / "repro" / "core" / "waterfill_reference.py"
        hits = lint_snippet(
            ref.read_text(encoding="utf-8"), "golden-freeze", rel=WREF
        )
        assert hits == []
