"""``repro-lint --jobs``: the parallel file phase must be bit-identical.

The fan-out goes through ``supervised_map`` (dogfooding the repo's own
pool discipline), and the contract is the same one every other parallel
surface carries: parallel output == serial output, byte for byte, so
``--jobs`` can never change what CI gates on.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis.runner import run_lint

#: A fixture tree that actually produces findings — parity on an empty
#: report would prove nothing.  Mix of file-scope findings (wallclock,
#: module rng) across several files plus a suppression.
_FIXTURE = {
    "src/repro/simulator/a.py": (
        "import time\n"
        "def stamp():\n"
        "    return time.time()\n"
    ),
    "src/repro/simulator/b.py": (
        "import numpy as np\n"
        "def draw():\n"
        "    return np.random.rand()\n"
    ),
    "src/repro/simulator/c.py": (
        "import time\n"
        "def ok():\n"
        "    return time.time()  # repro-lint: disable=no-wallclock\n"
    ),
    "src/repro/traces/d.py": (
        "import numpy as np\n"
        "def demo():\n"
        "    return np.random.default_rng().uniform()\n"
    ),
    "src/repro/simulator/broken.py": "def broken(:\n",
}


def _reports(root: Path):
    serial = run_lint([root / "src"], root=root, baseline_path=None)
    parallel = run_lint([root / "src"], root=root, baseline_path=None, jobs=2)
    return serial, parallel


def test_jobs_findings_bit_identical(make_repo):
    root = make_repo(_FIXTURE)
    serial, parallel = _reports(root)
    assert serial.findings, "fixture must produce findings for parity to mean anything"
    assert [f.to_dict() for f in serial.findings] == [
        f.to_dict() for f in parallel.findings
    ]
    assert serial.suppressed == parallel.suppressed
    assert serial.files == parallel.files
    assert serial.rules == parallel.rules


def test_jobs_includes_syntax_error_findings(make_repo):
    root = make_repo(_FIXTURE)
    _, parallel = _reports(root)
    assert any(f.rule == "syntax-error" for f in parallel.findings)


def test_jobs_one_means_serial(make_repo):
    root = make_repo(_FIXTURE)
    serial = run_lint([root / "src"], root=root, baseline_path=None)
    one = run_lint([root / "src"], root=root, baseline_path=None, jobs=1)
    assert [f.to_dict() for f in serial.findings] == [f.to_dict() for f in one.findings]


def test_jobs_respects_select(make_repo):
    root = make_repo(_FIXTURE)
    serial = run_lint(
        [root / "src"], root=root, baseline_path=None, select=["no-wallclock"]
    )
    parallel = run_lint(
        [root / "src"], root=root, baseline_path=None, select=["no-wallclock"], jobs=2
    )
    assert [f.to_dict() for f in serial.findings] == [
        f.to_dict() for f in parallel.findings
    ]
    assert all(f.rule in ("no-wallclock", "syntax-error") for f in parallel.findings)


def test_jobs_parity_on_real_repo(repo_root):
    serial = run_lint([repo_root / "src"], root=repo_root, baseline_path=None)
    parallel = run_lint([repo_root / "src"], root=repo_root, baseline_path=None, jobs=2)
    assert [f.to_dict() for f in serial.findings] == [
        f.to_dict() for f in parallel.findings
    ]
    assert serial.suppressed == parallel.suppressed
