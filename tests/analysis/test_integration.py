"""repro-lint runs clean over the repository at HEAD.

This is the acceptance gate the CI ``lint-invariants`` job re-runs from
the command line: the shipped tree (``src`` + ``examples``) must produce
zero findings with the full rule pack — every contract the rules encode
is *actually upheld*, not merely checkable.  If a change legitimately
needs an exception, it goes through a suppression comment or the
baseline workflow (see docs/analysis.md), not through weakening a rule.
"""

from __future__ import annotations

from repro.analysis.runner import build_rules, run_lint
from repro.registry import names


def test_rule_pack_has_at_least_sixteen_rules():
    pack = names("lint")
    assert len(pack) >= 16, pack


def test_whole_program_rules_are_registered():
    pack = names("lint")
    for rule in ("rng-taint", "worker-purity", "hook-conformance", "dead-component"):
        assert rule in pack


def test_every_rule_has_name_scope_and_description():
    for rule in build_rules():
        assert rule.name in names("lint")
        assert rule.scope in ("file", "repo")
        assert len(rule.description) > 20


def test_repo_lints_clean_at_head(repo_root):
    baseline = repo_root / "lint-baseline.json"
    report = run_lint(
        [repo_root / "src", repo_root / "examples"],
        root=repo_root,
        baseline_path=baseline if baseline.exists() else None,
    )
    assert report.findings == [], "\n" + "\n".join(
        f.format() for f in report.findings
    )
    assert report.files > 50  # the whole shipped tree, not a subset


def test_docs_and_tests_also_lint_clean(repo_root):
    # Wider than the CI gate: the golden-freeze and docs rules must hold
    # over tests/ too (tests may import the reference, but their markdown
    # and registry uses still have to resolve).
    report = run_lint(
        [repo_root / "src", repo_root / "examples", repo_root / "tests"],
        root=repo_root,
        baseline_path=None,
    )
    assert report.findings == [], "\n" + "\n".join(
        f.format() for f in report.findings
    )
