"""Fixture tests for the registry-discipline rules."""

from __future__ import annotations

from pathlib import Path

from repro.analysis.rules.registry_rules import documented_names
from repro.analysis.runner import run_lint

MOD = "src/repro/policies/snippet.py"

_IMPORT = "from repro.registry import register\n"


class TestCallDiscipline:
    def test_known_kind_literal_name_is_clean(self, lint_snippet):
        code = _IMPORT + "@register('policy', 'my-policy')\nclass P:\n    pass\n"
        assert lint_snippet(code, "registry-call-discipline", rel=MOD) == []

    def test_unknown_kind_fires(self, lint_snippet):
        code = _IMPORT + "@register('frobnicator', 'x')\nclass P:\n    pass\n"
        hits = lint_snippet(code, "registry-call-discipline", rel=MOD)
        assert len(hits) == 1 and "unknown registry kind" in hits[0].message

    def test_computed_kind_fires(self, lint_snippet):
        code = _IMPORT + "KIND = 'policy'\n@register(KIND, 'x')\nclass P:\n    pass\n"
        hits = lint_snippet(code, "registry-call-discipline", rel=MOD)
        assert len(hits) == 1 and "string literal" in hits[0].message

    def test_computed_name_fires_outside_tests(self, lint_snippet):
        code = _IMPORT + "name = 'x'\n@register('policy', name)\nclass P:\n    pass\n"
        hits = lint_snippet(code, "registry-call-discipline", rel=MOD)
        assert len(hits) == 1 and "explicit string literal" in hits[0].message

    def test_tests_are_fully_exempt(self, lint_snippet):
        # tests/ probes the registry machinery itself (unknown kinds for
        # error paths, computed names for throwaway components).
        code = _IMPORT + "name = 'x'\n@register('frobnicator', name)\nclass P:\n    pass\n"
        rel = "tests/registry/test_snippet.py"
        assert lint_snippet(code, "registry-call-discipline", rel=rel) == []

    def test_unknown_kind_in_create_lookup_fires(self, lint_snippet):
        code = "from repro.registry import create\nx = create('frobnicator', 'x')\n"
        assert len(lint_snippet(code, "registry-call-discipline", rel=MOD)) == 1

    def test_keyword_arguments_resolve(self, lint_snippet):
        code = _IMPORT + "@register(kind='policy', name='kw-style')\nclass P:\n    pass\n"
        assert lint_snippet(code, "registry-call-discipline", rel=MOD) == []

    def test_module_alias_call_resolves(self, lint_snippet):
        code = (
            "from repro import registry\n"
            "@registry.register('frobnicator', 'x')\nclass P:\n    pass\n"
        )
        assert len(lint_snippet(code, "registry-call-discipline", rel=MOD)) == 1

    def test_files_without_registry_imports_skip_cheaply(self, lint_snippet):
        code = "def register(kind, name):\n    pass\nregister(1, 2)\n"
        assert lint_snippet(code, "registry-call-discipline", rel=MOD) == []


class TestDocumentedNames:
    def test_backticks_cover(self):
        assert documented_names("row: `alpha`, `beta`", {"alpha", "beta"}) >= {
            "alpha",
            "beta",
        }

    def test_lexical_range_covers_registered_between(self):
        covered = documented_names(
            "`fig03` … `fig22`", {"fig03", "fig07", "fig22", "fig99"}
        )
        assert {"fig03", "fig07", "fig22"} <= covered
        assert "fig99" not in covered

    def test_ascii_ellipsis_range(self):
        covered = documented_names("`a01` ... `a05`", {"a03"})
        assert "a03" in covered


class TestRegistryDocsRepoRule:
    def _run(self, root: Path):
        return run_lint(
            [root / "src"], root=root, select=["registry-docs"], baseline_path=None
        ).findings

    def test_uncatalogued_registration_fires(self, make_repo):
        root = make_repo(
            {
                "src/repro/policies/p.py": _IMPORT
                + "@register('policy', 'novel-policy')\nclass P:\n    pass\n",
                "docs/registry.md": "| policy | `old-policy` |\n",
            }
        )
        hits = self._run(root)
        assert len(hits) == 1
        assert "novel-policy" in hits[0].message
        assert hits[0].path == "src/repro/policies/p.py"

    def test_catalogued_registration_is_clean(self, make_repo):
        root = make_repo(
            {
                "src/repro/policies/p.py": _IMPORT
                + "@register('policy', 'novel-policy')\nclass P:\n    pass\n",
                "docs/registry.md": "| policy | `novel-policy` |\n",
            }
        )
        assert self._run(root) == []

    def test_missing_catalogue_fires_once(self, make_repo):
        root = make_repo(
            {
                "src/repro/policies/p.py": _IMPORT
                + "@register('policy', 'x')\nclass P:\n    pass\n",
            }
        )
        hits = self._run(root)
        assert len(hits) == 1 and "docs/registry.md is missing" in hits[0].message

    def test_test_registrations_are_exempt(self, make_repo):
        root = make_repo(
            {
                "src/repro/__init__.py": "",
                "tests/test_p.py": _IMPORT
                + "@register('policy', 'throwaway')\nclass P:\n    pass\n",
                "docs/registry.md": "nothing\n",
            }
        )
        report = run_lint(
            [root / "src", root / "tests"],
            root=root,
            select=["registry-docs"],
            baseline_path=None,
        )
        assert report.findings == []
