"""CLI behavior: exit codes, formats, selection, baseline workflow."""

from __future__ import annotations

import json

from repro.analysis.cli import main

_DIRTY = "import numpy as np\nx = np.random.rand()\n"
_CLEAN = "import numpy as np\ndef make(seed):\n    return np.random.default_rng(seed)\n"


def _repo(make_repo, src_text):
    return make_repo(
        {
            "src/repro/simulator/mod.py": src_text,
            "docs/registry.md": "placeholder\n",
        }
    )


class TestExitCodes:
    def test_clean_tree_exits_zero(self, make_repo, capsys):
        root = _repo(make_repo, _CLEAN)
        rc = main([str(root / "src"), "--root", str(root)])
        assert rc == 0
        assert "0 findings" in capsys.readouterr().out

    def test_findings_exit_one(self, make_repo, capsys):
        root = _repo(make_repo, _DIRTY)
        rc = main([str(root / "src"), "--root", str(root)])
        out = capsys.readouterr().out
        assert rc == 1
        assert "src/repro/simulator/mod.py:2: no-module-rng:" in out

    def test_missing_path_exits_two(self, make_repo, capsys):
        root = _repo(make_repo, _CLEAN)
        rc = main([str(root / "nowhere"), "--root", str(root)])
        assert rc == 2
        assert "no such path" in capsys.readouterr().err

    def test_unknown_rule_exits_two(self, make_repo, capsys):
        root = _repo(make_repo, _CLEAN)
        rc = main([str(root / "src"), "--root", str(root), "--select", "no-such-rule"])
        assert rc == 2
        assert "no-such-rule" in capsys.readouterr().err


class TestFormatsAndSelection:
    def test_json_format_is_machine_readable(self, make_repo, capsys):
        root = _repo(make_repo, _DIRTY)
        rc = main([str(root / "src"), "--root", str(root), "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert rc == 1
        assert payload["findings"][0]["rule"] == "no-module-rng"
        assert payload["findings"][0]["path"] == "src/repro/simulator/mod.py"

    def test_select_runs_only_named_rules(self, make_repo, capsys):
        root = _repo(make_repo, _DIRTY)
        rc = main(
            [str(root / "src"), "--root", str(root), "--select", "no-wallclock"]
        )
        capsys.readouterr()
        assert rc == 0  # the rng finding belongs to a rule we did not select

    def test_list_rules_names_the_whole_pack(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in (
            "no-module-rng",
            "no-wallclock",
            "no-set-iteration",
            "golden-freeze",
            "registry-call-discipline",
            "registry-docs",
            "collector-merge-discipline",
            "failure-rng-discipline",
            "scenario-schema-docs",
            "docs-links",
        ):
            assert rule in out


class TestBaselineWorkflow:
    def test_update_baseline_then_clean_run(self, make_repo, capsys):
        root = _repo(make_repo, _DIRTY)
        argv = [str(root / "src"), "--root", str(root)]
        assert main(argv + ["--update-baseline"]) == 0
        assert (root / "lint-baseline.json").exists()
        capsys.readouterr()
        # Grandfathered finding no longer fails the run...
        assert main(argv + ["--baseline", str(root / "lint-baseline.json")]) == 0
        assert "baselined" in capsys.readouterr().out
        # ...but --no-baseline still reports it.
        assert main(argv + ["--no-baseline"]) == 1

    def test_new_findings_still_fail_with_baseline(self, make_repo, capsys):
        root = _repo(make_repo, _DIRTY)
        argv = [str(root / "src"), "--root", str(root)]
        assert main(argv + ["--update-baseline"]) == 0
        dirty = root / "src" / "repro" / "simulator" / "mod.py"
        dirty.write_text(_DIRTY + "np.random.seed(0)\n", encoding="utf-8")
        capsys.readouterr()
        rc = main(argv + ["--baseline", str(root / "lint-baseline.json")])
        out = capsys.readouterr().out
        assert rc == 1
        assert "np.random.seed" in out  # the new line
        assert "mod.py:2" not in out.splitlines()[0]  # the old line stays baselined

    def test_suppression_comment_silences_and_is_counted(self, make_repo, capsys):
        root = _repo(
            make_repo,
            "import numpy as np\n"
            "x = np.random.rand()  # repro-lint: disable=no-module-rng\n",
        )
        rc = main([str(root / "src"), "--root", str(root)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "1 suppressed" in out
