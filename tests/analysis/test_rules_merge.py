"""Fixture tests for the sharded-engine merge-discipline rules."""

from __future__ import annotations

MOD = "src/repro/simulator/snippet.py"

_IMPORTS = "import numpy as np\nfrom repro.registry import register\n"


class TestCollectorMergeDiscipline:
    def test_collector_without_merge_or_declaration_fires(self, lint_snippet):
        code = _IMPORTS + (
            "@register('metrics', 'bad')\n"
            "class Bad:\n"
            "    def on_event(self, ev):\n"
            "        pass\n"
        )
        hits = lint_snippet(code, "collector-merge-discipline", rel=MOD)
        assert len(hits) == 1 and "Bad" in hits[0].message

    def test_merge_shards_satisfies(self, lint_snippet):
        code = _IMPORTS + (
            "@register('metrics', 'good')\n"
            "class Good:\n"
            "    def merge_shards(self, shards):\n"
            "        pass\n"
        )
        assert lint_snippet(code, "collector-merge-discipline", rel=MOD) == []

    def test_mergeable_false_satisfies(self, lint_snippet):
        code = _IMPORTS + (
            "@register('metrics', 'optout')\n"
            "class OptOut:\n"
            "    mergeable = False\n"
        )
        assert lint_snippet(code, "collector-merge-discipline", rel=MOD) == []

    def test_annotated_mergeable_false_satisfies(self, lint_snippet):
        code = _IMPORTS + (
            "@register('metrics', 'optout')\n"
            "class OptOut:\n"
            "    mergeable: bool = False\n"
        )
        assert lint_snippet(code, "collector-merge-discipline", rel=MOD) == []

    def test_mergeable_true_does_not_satisfy(self, lint_snippet):
        code = _IMPORTS + (
            "@register('metrics', 'bad')\n"
            "class Bad:\n"
            "    mergeable = True\n"
        )
        assert len(lint_snippet(code, "collector-merge-discipline", rel=MOD)) == 1

    def test_non_metrics_registrations_are_ignored(self, lint_snippet):
        code = _IMPORTS + "@register('policy', 'p')\nclass P:\n    pass\n"
        assert lint_snippet(code, "collector-merge-discipline", rel=MOD) == []


class TestCollectorSnapshotDiscipline:
    def test_collector_without_pair_or_declaration_fires(self, lint_snippet):
        code = _IMPORTS + (
            "@register('metrics', 'bad')\n"
            "class Bad:\n"
            "    def on_event(self, ev):\n"
            "        pass\n"
        )
        hits = lint_snippet(code, "collector-snapshot-discipline", rel=MOD)
        assert len(hits) == 1
        assert "Bad" in hits[0].message
        assert "restore/snapshot" in hits[0].message  # names both missing methods

    def test_half_a_pair_fires_naming_the_missing_half(self, lint_snippet):
        code = _IMPORTS + (
            "@register('metrics', 'half')\n"
            "class Half:\n"
            "    def snapshot(self):\n"
            "        return {}\n"
        )
        hits = lint_snippet(code, "collector-snapshot-discipline", rel=MOD)
        assert len(hits) == 1
        assert "missing restore " in hits[0].message
        assert "snapshot/" not in hits[0].message  # snapshot exists

    def test_snapshot_restore_pair_satisfies(self, lint_snippet):
        code = _IMPORTS + (
            "@register('metrics', 'good')\n"
            "class Good:\n"
            "    def snapshot(self):\n"
            "        return {}\n"
            "    def restore(self, state):\n"
            "        pass\n"
        )
        assert lint_snippet(code, "collector-snapshot-discipline", rel=MOD) == []

    def test_snapshottable_false_satisfies(self, lint_snippet):
        code = _IMPORTS + (
            "@register('metrics', 'optout')\n"
            "class OptOut:\n"
            "    snapshottable = False\n"
        )
        assert lint_snippet(code, "collector-snapshot-discipline", rel=MOD) == []

    def test_annotated_snapshottable_false_satisfies(self, lint_snippet):
        code = _IMPORTS + (
            "@register('metrics', 'optout')\n"
            "class OptOut:\n"
            "    snapshottable: bool = False\n"
        )
        assert lint_snippet(code, "collector-snapshot-discipline", rel=MOD) == []

    def test_snapshottable_true_does_not_satisfy(self, lint_snippet):
        code = _IMPORTS + (
            "@register('metrics', 'bad')\n"
            "class Bad:\n"
            "    snapshottable = True\n"
        )
        assert len(lint_snippet(code, "collector-snapshot-discipline", rel=MOD)) == 1

    def test_merge_discipline_opt_out_does_not_transfer(self, lint_snippet):
        # `mergeable = False` opts out of sharding, not of checkpointing.
        code = _IMPORTS + (
            "@register('metrics', 'bad')\n"
            "class Bad:\n"
            "    mergeable = False\n"
        )
        assert len(lint_snippet(code, "collector-snapshot-discipline", rel=MOD)) == 1

    def test_non_metrics_registrations_are_ignored(self, lint_snippet):
        code = _IMPORTS + "@register('failure', 'f')\nclass F:\n    pass\n"
        assert lint_snippet(code, "collector-snapshot-discipline", rel=MOD) == []


class TestFailureRngDiscipline:
    def test_module_draw_inside_failure_model_fires(self, lint_snippet):
        code = _IMPORTS + (
            "@register('failure', 'bad')\n"
            "class Bad:\n"
            "    def events(self, horizon, rng):\n"
            "        return np.random.exponential(1.0)\n"
        )
        hits = lint_snippet(code, "failure-rng-discipline", rel=MOD)
        assert len(hits) == 1 and "np.random.exponential" in hits[0].message

    def test_private_default_rng_fires(self, lint_snippet):
        # A model building its own generator dodges the sliced flat-seed
        # schedule even if the seed "looks" deterministic.
        code = _IMPORTS + (
            "@register('failure', 'bad')\n"
            "class Bad:\n"
            "    def __init__(self, seed):\n"
            "        self.rng = np.random.default_rng(seed)\n"
        )
        assert len(lint_snippet(code, "failure-rng-discipline", rel=MOD)) == 1

    def test_passed_rng_draws_are_clean(self, lint_snippet):
        code = _IMPORTS + (
            "@register('failure', 'good')\n"
            "class Good:\n"
            "    def events(self, horizon, rng):\n"
            "        return rng.exponential(1.0, size=4)\n"
        )
        assert lint_snippet(code, "failure-rng-discipline", rel=MOD) == []

    def test_generator_annotations_are_sanctioned(self, lint_snippet):
        code = _IMPORTS + (
            "@register('failure', 'good')\n"
            "class Good:\n"
            "    def events(self, horizon, rng: np.random.Generator):\n"
            "        return rng.poisson(2.0)\n"
        )
        assert lint_snippet(code, "failure-rng-discipline", rel=MOD) == []

    def test_annotated_attribute_declaration_is_clean(self, lint_snippet):
        code = _IMPORTS + (
            "@register('failure', 'good')\n"
            "class Good:\n"
            "    rng: np.random.Generator\n"
        )
        assert lint_snippet(code, "failure-rng-discipline", rel=MOD) == []

    def test_unregistered_classes_are_ignored(self, lint_snippet):
        code = _IMPORTS + (
            "class Helper:\n"
            "    def noise(self):\n"
            "        return np.random.rand()\n"
        )
        assert lint_snippet(code, "failure-rng-discipline", rel=MOD) == []
