"""Shared helpers for the repro-lint test suite.

Rules are exercised on *fixture snippets* — inline source strings given a
synthetic repo-relative path (path-gated rules care) — so each test reads
as: this code, at this path, does/does not fire this rule.
"""

from __future__ import annotations

from pathlib import Path

import pytest

import repro.analysis  # noqa: F401  (registers the rule pack)
from repro.analysis.core import Finding, LintContext, ModuleSource
from repro.registry import create


def _lint_snippet(
    code: str,
    rule: str,
    rel: str = "src/repro/simulator/snippet.py",
    root: Path | None = None,
) -> list[Finding]:
    """Run one file-scope rule over an inline snippet at a synthetic path."""
    module = ModuleSource(Path("/fixture") / rel, rel, text=code)
    ctx = LintContext(root=root or Path("/fixture"), modules=[module])
    return list(create("lint", rule).check(module, ctx))


@pytest.fixture
def lint_snippet():
    """The snippet runner as a fixture (tests/ has no package imports)."""
    return _lint_snippet


@pytest.fixture(scope="session")
def repo_root():
    """The real repository root (tests/analysis/ is two levels down)."""
    return Path(__file__).resolve().parent.parent.parent


@pytest.fixture
def make_repo(tmp_path):
    """Factory for a minimal on-disk repo tree (repo-scope rules read docs).

    ``make_repo({"src/repro/x.py": "...", "docs/registry.md": "..."})``
    returns the root; missing parents are created.
    """

    def _make(files: dict[str, str]) -> Path:
        for rel, text in files.items():
            p = tmp_path / rel
            p.parent.mkdir(parents=True, exist_ok=True)
            p.write_text(text, encoding="utf-8")
        return tmp_path

    return _make
