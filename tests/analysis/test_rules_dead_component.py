"""Fixture tests for the ``dead-component`` liveness rule."""

from __future__ import annotations

from pathlib import Path

from repro.analysis.baseline import write_baseline
from repro.analysis.runner import run_lint


def _lint(root: Path, *, baseline=None):
    return run_lint(
        [root / "src"], root=root, select=["dead-component"], baseline_path=baseline
    )


_TWO_COMPONENTS = (
    "from repro.registry import register\n"
    "@register('policy', 'used-one')\n"
    "class Used:\n"
    "    pass\n"
    "@register('policy', 'orphan-two')\n"
    "class Orphan:\n"
    "    pass\n"
)


class TestPositive:
    def test_unreferenced_registration_reported(self, make_repo):
        """The true positive no per-file rule catches: the registration is
        perfectly well-formed (``registry-call-discipline`` passes, the
        docs row exists) — only a repo-wide reference scan can tell that
        nothing ever selects ``orphan-two``."""
        root = make_repo(
            {
                "src/pkg/components.py": _TWO_COMPONENTS,
                "src/pkg/main.py": "CHOICE = 'used-one'\n",
            }
        )
        report = _lint(root)
        assert len(report.findings) == 1
        assert "'orphan-two' is registered but referenced nowhere" in report.findings[0].message

    def test_catalogue_row_alone_does_not_count_as_alive(self, make_repo):
        # registry-docs *forces* a row in docs/registry.md for every
        # component, so that file must not vouch for liveness.
        root = make_repo(
            {
                "src/pkg/components.py": _TWO_COMPONENTS,
                "src/pkg/main.py": "CHOICE = 'used-one'\n",
                "docs/registry.md": "| `policy` | `used-one`, `orphan-two` | stuff |\n",
            }
        )
        report = _lint(root)
        assert [f.message.split("'")[1] for f in report.findings] == ["orphan-two"]


class TestNegative:
    def test_scenario_literal_reference(self, make_repo):
        root = make_repo(
            {
                "src/pkg/components.py": _TWO_COMPONENTS,
                "src/pkg/main.py": "A = 'used-one'\nB = {'policy': 'orphan-two'}\n",
            }
        )
        assert _lint(root).findings == []

    def test_test_file_reference_counts(self, make_repo):
        root = make_repo(
            {
                "src/pkg/components.py": _TWO_COMPONENTS,
                "src/pkg/main.py": "A = 'used-one'\n",
                "tests/test_orphan.py": (
                    "def test_it():\n"
                    "    assert create('policy', 'orphan-two') is not None\n"
                ),
            }
        )
        assert _lint(root).findings == []

    def test_docs_mention_outside_catalogue_counts(self, make_repo):
        root = make_repo(
            {
                "src/pkg/components.py": _TWO_COMPONENTS,
                "src/pkg/main.py": "A = 'used-one'\n",
                "docs/policies.md": "The `orphan-two` policy handles spillover.\n",
            }
        )
        assert _lint(root).findings == []

    def test_comma_separated_scenario_list_counts(self, make_repo):
        root = make_repo(
            {
                "src/pkg/components.py": _TWO_COMPONENTS,
                "src/pkg/main.py": "METRICS = 'used-one,orphan-two'\n",
            }
        )
        assert _lint(root).findings == []


class TestSuppressionAndBaseline:
    _BAD = (
        "from repro.registry import register\n"
        "@register('policy', 'orphan-two')  {comment}\n"
        "class Orphan:\n"
        "    pass\n"
    )

    def test_same_line_suppression(self, make_repo):
        root = make_repo(
            {
                "src/pkg/components.py": self._BAD.format(
                    comment="# repro-lint: disable=dead-component"
                )
            }
        )
        report = _lint(root)
        assert report.findings == [] and report.suppressed == 1

    def test_baseline_grandfathers_finding(self, make_repo, tmp_path):
        root = make_repo({"src/pkg/components.py": self._BAD.format(comment="")})
        baseline = tmp_path / "baseline.json"
        write_baseline(baseline, _lint(root).findings, {})
        report = _lint(root, baseline=baseline)
        assert report.findings == []
        assert [f.rule for f in report.baselined] == ["dead-component"]
