"""Fixture tests for the pool-discipline rule (docs/robustness.md)."""

from __future__ import annotations

MOD = "src/repro/scenario/snippet.py"


class TestPoolDiscipline:
    def test_pool_constructor_fires(self, lint_snippet):
        code = "import multiprocessing\np = multiprocessing.Pool(4)\n"
        hits = lint_snippet(code, "pool-discipline", rel=MOD)
        assert len(hits) == 1 and "multiprocessing.Pool" in hits[0].message
        assert "supervised_map" in hits[0].message

    def test_get_context_and_context_pool_fire(self, lint_snippet):
        code = (
            "import multiprocessing\n"
            "ctx = multiprocessing.get_context('fork')\n"
            "with ctx.Pool(2) as pool:\n"
            "    pass\n"
        )
        hits = lint_snippet(code, "pool-discipline", rel=MOD)
        assert len(hits) == 2
        assert any("get_context" in h.message for h in hits)
        assert any("Pool" in h.message for h in hits)

    def test_aliased_import_fires(self, lint_snippet):
        code = "import multiprocessing as mp\nmp.Process(target=print).start()\n"
        hits = lint_snippet(code, "pool-discipline", rel=MOD)
        assert len(hits) == 1 and "multiprocessing.Process" in hits[0].message

    def test_from_import_fires(self, lint_snippet):
        code = "from multiprocessing import Pool\nPool(8)\n"
        assert len(lint_snippet(code, "pool-discipline", rel=MOD)) == 1

    def test_process_pool_executor_fires(self, lint_snippet):
        code = (
            "from concurrent.futures import ProcessPoolExecutor\n"
            "ex = ProcessPoolExecutor(4)\n"
        )
        hits = lint_snippet(code, "pool-discipline", rel=MOD)
        assert len(hits) == 1 and "ProcessPoolExecutor" in hits[0].message

    def test_dotted_process_pool_executor_fires(self, lint_snippet):
        code = (
            "import concurrent.futures\n"
            "ex = concurrent.futures.ProcessPoolExecutor(4)\n"
        )
        assert len(lint_snippet(code, "pool-discipline", rel=MOD)) == 1

    def test_runtime_package_is_exempt(self, lint_snippet):
        code = "import multiprocessing\nctx = multiprocessing.get_context('fork')\n"
        rel = "src/repro/runtime/supervisor.py"
        assert lint_snippet(code, "pool-discipline", rel=rel) == []

    def test_tests_and_benchmarks_are_exempt(self, lint_snippet):
        code = "import multiprocessing\nmultiprocessing.Pool(2)\n"
        assert lint_snippet(code, "pool-discipline", rel="tests/runtime/t.py") == []
        assert lint_snippet(code, "pool-discipline", rel="benchmarks/b.py") == []

    def test_unrelated_pool_name_is_silent(self, lint_snippet):
        # A module that never imports multiprocessing may call its own Pool.
        code = (
            "class Pool:\n"
            "    pass\n"
            "def make():\n"
            "    return Pool()\n"
        )
        assert lint_snippet(code, "pool-discipline", rel=MOD) == []

    def test_non_fanout_multiprocessing_use_is_silent(self, lint_snippet):
        # Reading state is fine; only constructing fan-out is banned.
        code = (
            "import multiprocessing\n"
            "daemon = multiprocessing.current_process().daemon\n"
            "methods = multiprocessing.get_all_start_methods()\n"
        )
        assert lint_snippet(code, "pool-discipline", rel=MOD) == []

    def test_suppression_comment_is_honored_by_the_runner(self, make_repo):
        from repro.analysis.runner import run_lint

        root = make_repo(
            {
                "src/repro/scenario/mod.py": (
                    "import multiprocessing\n"
                    "p = multiprocessing.Pool(2)  # repro-lint: disable=pool-discipline\n"
                )
            }
        )
        report = run_lint([root / "src"], root=root, select=["pool-discipline"])
        assert report.findings == [] and report.suppressed == 1
