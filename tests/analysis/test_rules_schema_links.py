"""Fixture tests for the repo-scope docs rules (scenario schema, links)."""

from __future__ import annotations

from pathlib import Path

from repro.analysis.runner import run_lint

_SCENARIO = (
    "from dataclasses import dataclass\n"
    "@dataclass\n"
    "class Scenario:\n"
    "    name: str\n"
    "    seed: int\n"
    "    workload: dict\n"
    "    def to_dict(self):\n"
    "        return {'workload': dict(self.workload)}\n"
)

_SCHEMA_DOC = "| `name` | | `seed` | | `workload` |\n"


def _run(root: Path, rule: str, paths: list[str] | None = None):
    targets = [root / p for p in (paths or ["src"])]
    return run_lint(targets, root=root, select=[rule], baseline_path=None).findings


class TestScenarioSchemaDocs:
    def test_documented_fields_pass(self, make_repo):
        root = make_repo(
            {
                "src/repro/scenario/scenario.py": _SCENARIO,
                "docs/scenario-schema.md": _SCHEMA_DOC,
            }
        )
        assert _run(root, "scenario-schema-docs") == []

    def test_undocumented_field_fires_at_its_line(self, make_repo):
        root = make_repo(
            {
                "src/repro/scenario/scenario.py": _SCENARIO,
                "docs/scenario-schema.md": "| `name` | | `workload` |\n",
            }
        )
        hits = _run(root, "scenario-schema-docs")
        assert len(hits) == 1
        assert "'seed'" in hits[0].message
        assert hits[0].line == 5  # the AnnAssign line of `seed`

    def test_missing_schema_doc_fires(self, make_repo):
        root = make_repo({"src/repro/scenario/scenario.py": _SCENARIO})
        hits = _run(root, "scenario-schema-docs")
        assert len(hits) == 1 and "scenario-schema.md is missing" in hits[0].message

    def test_dead_special_case_key_fires(self, make_repo):
        # `workload` special-cased in to_dict but no longer a field.
        code = _SCENARIO.replace("    workload: dict\n", "")
        root = make_repo(
            {
                "src/repro/scenario/scenario.py": code,
                "docs/scenario-schema.md": _SCHEMA_DOC,
            }
        )
        hits = _run(root, "scenario-schema-docs")
        assert len(hits) == 1 and "dead special-case" in hits[0].message

    def test_rule_is_silent_when_scenario_layer_not_linted(self, make_repo):
        root = make_repo(
            {"src/repro/other/mod.py": "x = 1\n", "docs/scenario-schema.md": "\n"}
        )
        assert _run(root, "scenario-schema-docs") == []


class TestDocsLinks:
    def test_clean_tree_passes(self, make_repo):
        root = make_repo(
            {
                "README.md": "See [the guide](docs/guide.md).\n",
                "docs/guide.md": "# Guide\n",
                "src/repro/__init__.py": "",
            }
        )
        assert _run(root, "docs-links") == []

    def test_broken_relative_link_fires(self, make_repo):
        root = make_repo(
            {
                "README.md": "See [the guide](docs/missing.md).\n",
                "docs/guide.md": "# Guide\n",
                "src/repro/__init__.py": "",
            }
        )
        hits = _run(root, "docs-links")
        assert len(hits) >= 1
        assert hits[0].path == "README.md" and hits[0].line == 1

    def test_broken_anchor_fires(self, make_repo):
        root = make_repo(
            {
                "README.md": "Jump to [setup](docs/guide.md#no-such-heading).\n",
                "docs/guide.md": "# Guide\n\n## Setup\n",
                "src/repro/__init__.py": "",
            }
        )
        assert len(_run(root, "docs-links")) == 1

    def test_matching_anchor_passes(self, make_repo):
        root = make_repo(
            {
                "README.md": "Jump to [setup](docs/guide.md#setup).\n",
                "docs/guide.md": "# Guide\n\n## Setup\n",
                "src/repro/__init__.py": "",
            }
        )
        assert _run(root, "docs-links") == []

    def test_prose_mention_of_missing_docs_page_fires(self, make_repo):
        # No link syntax at all — `docs/phantom.md` appears in inline code.
        root = make_repo(
            {
                "README.md": "The catalogue lives in `docs/phantom.md`.\n",
                "docs/guide.md": "# Guide\n",
                "src/repro/__init__.py": "",
            }
        )
        hits = _run(root, "docs-links")
        assert len(hits) == 1 and "phantom" in hits[0].message

    def test_external_urls_are_never_fetched(self, make_repo):
        root = make_repo(
            {
                "README.md": "[paper](https://example.invalid/paper.pdf)\n",
                "src/repro/__init__.py": "",
            }
        )
        assert _run(root, "docs-links") == []
