"""Tests for the per-server local deflation controller."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.controller import LocalDeflationController
from repro.core.deflation import DeterministicPolicy, PriorityPolicy, ProportionalPolicy
from repro.core.resources import ResourceVector
from repro.core.vm import VMSpec, on_demand_spec
from repro.errors import PlacementError


def cap48():
    return ResourceVector(cpu=48, memory_mb=128 * 1024, disk_mbps=2000, net_mbps=10_000)


def vm(cpu, mem_gb=None, priority=0.5, deflatable=True, min_fraction=0.0):
    mem = (mem_gb if mem_gb is not None else cpu * 2) * 1024
    return VMSpec(
        capacity=ResourceVector(cpu=cpu, memory_mb=mem, disk_mbps=100, net_mbps=100),
        priority=priority,
        deflatable=deflatable,
        min_fraction=min_fraction,
    )


class TestNoPressure:
    def test_full_allocations_without_pressure(self):
        ctrl = LocalDeflationController(cap48())
        spec = vm(16)
        alloc = ctrl.place(spec)
        assert alloc.current == spec.capacity
        ctrl.verify_invariants()

    def test_committed_and_used(self):
        ctrl = LocalDeflationController(cap48())
        ctrl.place(vm(16))
        ctrl.place(vm(8))
        assert ctrl.committed().cpu == 24
        assert ctrl.used().cpu == 24


class TestPressure:
    def test_deflation_fits_allocations_to_capacity(self):
        ctrl = LocalDeflationController(cap48(), ProportionalPolicy())
        ctrl.place(vm(32))
        ctrl.place(vm(32))
        assert ctrl.used().cpu == pytest.approx(48)
        ctrl.verify_invariants()

    def test_on_demand_never_deflated(self):
        ctrl = LocalDeflationController(cap48(), ProportionalPolicy())
        ctrl.place(vm(32))
        od = on_demand_spec(ResourceVector(32, 64 * 1024, 100, 100))
        ctrl.place(od)
        assert ctrl.allocation_of(od.vm_id).cpu == 32
        # The deflatable VM absorbed all the pressure: 48-32 = 16.
        others = [a for a in ctrl.vms.values() if a.spec.vm_id != od.vm_id]
        assert others[0].current.cpu == pytest.approx(16)

    def test_departure_reinflates(self):
        ctrl = LocalDeflationController(cap48(), ProportionalPolicy())
        a = vm(32)
        b = vm(32)
        ctrl.place(a)
        ctrl.place(b)
        assert ctrl.allocation_of(a.vm_id).cpu < 32
        ctrl.remove(b.vm_id)
        assert ctrl.allocation_of(a.vm_id).cpu == pytest.approx(32)

    def test_priority_policy_protects_high_priority(self):
        ctrl = LocalDeflationController(cap48(), PriorityPolicy())
        lo = vm(24, priority=0.2)
        hi = vm(24, priority=0.8)
        ctrl.place(lo)
        ctrl.place(hi)
        ctrl.place(on_demand_spec(ResourceVector(12, 24 * 1024, 100, 100)))
        assert ctrl.allocation_of(lo.vm_id).cpu < ctrl.allocation_of(hi.vm_id).cpu
        ctrl.verify_invariants()

    def test_deterministic_policy_binary(self):
        ctrl = LocalDeflationController(cap48(), DeterministicPolicy())
        lo = vm(24, priority=0.2)
        hi = vm(24, priority=0.8)
        ctrl.place(lo)
        ctrl.place(hi)
        ctrl.place(on_demand_spec(ResourceVector(8, 16 * 1024, 100, 100)))
        # Low-priority VM fully deflated to pi*M; high-priority untouched.
        assert ctrl.allocation_of(lo.vm_id).cpu == pytest.approx(0.2 * 24)
        assert ctrl.allocation_of(hi.vm_id).cpu == pytest.approx(24)


class TestAdmission:
    def test_rejects_when_infeasible(self):
        ctrl = LocalDeflationController(cap48(), ProportionalPolicy())
        ctrl.place(on_demand_spec(ResourceVector(40, 100 * 1024, 100, 100)))
        with pytest.raises(PlacementError):
            ctrl.place(on_demand_spec(ResourceVector(40, 100 * 1024, 100, 100)))

    def test_accepts_when_deflation_suffices(self):
        ctrl = LocalDeflationController(cap48(), ProportionalPolicy())
        ctrl.place(vm(40, mem_gb=100))
        # A 40-core on-demand VM fits because the deflatable VM can shrink.
        ctrl.place(on_demand_spec(ResourceVector(40, 20 * 1024, 100, 100)))
        ctrl.verify_invariants()

    def test_min_fraction_limits_admission(self):
        ctrl = LocalDeflationController(cap48(), ProportionalPolicy())
        ctrl.place(vm(40, min_fraction=0.5))  # can yield at most 20 cores
        with pytest.raises(PlacementError):
            ctrl.place(on_demand_spec(ResourceVector(40, 10 * 1024, 100, 100)))

    def test_duplicate_id_rejected(self):
        ctrl = LocalDeflationController(cap48())
        spec = vm(4)
        ctrl.place(spec)
        with pytest.raises(PlacementError):
            ctrl.place(spec)

    def test_remove_unknown(self):
        ctrl = LocalDeflationController(cap48())
        with pytest.raises(PlacementError):
            ctrl.remove("ghost")


class TestObservers:
    def test_deflation_events_fire(self):
        ctrl = LocalDeflationController(cap48(), ProportionalPolicy())
        events = []
        ctrl.subscribe(events.append)
        ctrl.place(vm(32))
        ctrl.place(vm(32))  # triggers deflation of both
        assert any(e.is_deflation for e in events)

    def test_reinflation_events_fire(self):
        ctrl = LocalDeflationController(cap48(), ProportionalPolicy())
        a, b = vm(32), vm(32)
        ctrl.place(a)
        ctrl.place(b)
        events = []
        ctrl.subscribe(events.append)
        ctrl.remove(b.vm_id)
        assert events and not events[-1].is_deflation


class TestReporting:
    def test_overcommitment_ratio(self):
        ctrl = LocalDeflationController(cap48())
        ctrl.place(vm(48, mem_gb=128))
        ctrl.place(vm(24, mem_gb=64))
        assert ctrl.overcommitment().cpu == pytest.approx(1.5)

    def test_deflation_summary_keys(self):
        ctrl = LocalDeflationController(cap48())
        spec = vm(4)
        ctrl.place(spec)
        summary = ctrl.deflation_summary()
        assert set(summary) == {spec.vm_id}
        assert set(summary[spec.vm_id]) == {"cpu", "memory_mb", "disk_mbps", "net_mbps"}


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=5000))
def test_random_place_remove_sequences_keep_invariants(seed):
    """Fuzz: any feasible sequence of placements/removals keeps the
    controller's invariants and ends fully reinflated."""
    rng = np.random.default_rng(seed)
    ctrl = LocalDeflationController(cap48(), ProportionalPolicy())
    placed = []
    for _ in range(20):
        if placed and rng.random() < 0.4:
            victim = placed.pop(int(rng.integers(len(placed))))
            ctrl.remove(victim.vm_id)
        else:
            spec = vm(int(rng.integers(1, 24)), priority=float(rng.choice([0.2, 0.5, 0.8])))
            if ctrl.can_accommodate(spec):
                ctrl.place(spec)
                placed.append(spec)
        ctrl.verify_invariants()
    for spec in placed:
        ctrl.remove(spec.vm_id)
    assert ctrl.used().is_zero()
