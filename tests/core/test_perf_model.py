"""Tests for the slack/linear/knee performance model (Figures 2-3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.perf_model import (
    ALL_PROFILES,
    FIG3_PROFILES,
    KCOMPILE,
    MEMCACHED,
    SPECJBB,
    PerfProfile,
)
from repro.errors import ResourceError


class TestRegions:
    def test_slack_region_is_flat(self):
        p = PerfProfile(slack=0.3, knee=0.8, knee_perf=0.5)
        for d in (0.0, 0.1, 0.29):
            assert p.performance(d) == pytest.approx(1.0)

    def test_knee_value(self):
        p = PerfProfile(slack=0.2, knee=0.7, knee_perf=0.4)
        assert p.performance(0.7) == pytest.approx(0.4)

    def test_linear_region_midpoint(self):
        p = PerfProfile(slack=0.0, knee=1.0, knee_perf=0.01, gamma=1.0, floor=0.0)
        # Halfway through a fully-linear profile: 1 - 0.99/2.
        assert p.performance(0.5) == pytest.approx(0.505)

    def test_post_knee_drops_precipitously(self):
        p = PerfProfile(slack=0.1, knee=0.6, knee_perf=0.6, floor=0.05)
        just_after = p.performance(0.65)
        deep = p.performance(0.95)
        assert just_after < 0.6
        assert deep < just_after
        assert deep >= p.floor - 1e-12

    def test_floor_respected(self):
        p = PerfProfile(slack=0.0, knee=0.5, knee_perf=0.3, floor=0.1)
        assert p.performance(0.999) >= 0.1

    def test_vectorized_matches_scalar(self):
        p = MEMCACHED
        grid = np.linspace(0, 1, 21)
        vec = p.performance(grid)
        scalars = np.array([p.performance(float(d)) for d in grid])
        np.testing.assert_allclose(vec, scalars)


class TestValidation:
    def test_slack_must_precede_knee(self):
        with pytest.raises(ResourceError):
            PerfProfile(slack=0.8, knee=0.5, knee_perf=0.5)

    def test_knee_perf_bounds(self):
        with pytest.raises(ResourceError):
            PerfProfile(slack=0.1, knee=0.5, knee_perf=1.5)

    def test_gamma_positive(self):
        with pytest.raises(ResourceError):
            PerfProfile(slack=0.1, knee=0.5, knee_perf=0.5, gamma=0.0)

    def test_floor_below_knee_perf(self):
        with pytest.raises(ResourceError):
            PerfProfile(slack=0.1, knee=0.5, knee_perf=0.3, floor=0.5)


class TestFig3Profiles:
    def test_specjbb_has_no_slack(self):
        assert SPECJBB.slack == 0.0
        assert SPECJBB.performance(0.05) < 1.0

    def test_memcached_most_resilient_at_half_deflation(self):
        perfs = {p.name: p.performance(0.5) for p in FIG3_PROFILES}
        assert perfs["Memcached"] > perfs["Kcompile"] > perfs["SpecJBB"]

    def test_memcached_has_large_slack(self):
        assert MEMCACHED.performance(0.3) == pytest.approx(1.0)

    def test_kcompile_roughly_linear(self):
        # CPU-bound build: perf at 50% deflation within the linear band.
        assert 0.4 < KCOMPILE.performance(0.5) < 0.8

    def test_registry(self):
        assert {"SpecJBB", "Kcompile", "Memcached"} <= set(ALL_PROFILES)


class TestDerived:
    def test_slowdown_is_reciprocal(self):
        p = SPECJBB
        assert p.slowdown(0.4) == pytest.approx(1.0 / p.performance(0.4))

    def test_max_safe_deflation_slack_profile(self):
        p = PerfProfile(slack=0.35, knee=0.9, knee_perf=0.5)
        assert p.max_safe_deflation(1.0) == pytest.approx(0.35, abs=0.01)

    def test_max_safe_deflation_validates(self):
        with pytest.raises(ResourceError):
            SPECJBB.max_safe_deflation(0.0)

    def test_max_safe_deflation_monotone_in_target(self):
        p = MEMCACHED
        d_strict = p.max_safe_deflation(0.95)
        d_loose = p.max_safe_deflation(0.6)
        assert d_loose >= d_strict


@settings(max_examples=50, deadline=None)
@given(
    slack=st.floats(min_value=0.0, max_value=0.5),
    span=st.floats(min_value=0.05, max_value=0.49),
    knee_perf=st.floats(min_value=0.1, max_value=1.0),
    gamma=st.floats(min_value=0.3, max_value=3.0),
)
def test_performance_monotone_nonincreasing(slack, span, knee_perf, gamma):
    p = PerfProfile(slack=slack, knee=min(slack + span, 1.0), knee_perf=knee_perf,
                    gamma=gamma, floor=min(0.02, knee_perf))
    grid = np.linspace(0, 1, 101)
    perf = p.performance(grid)
    assert np.all(np.diff(perf) <= 1e-9)
    assert np.all((perf >= p.floor - 1e-12) & (perf <= 1.0 + 1e-12))
