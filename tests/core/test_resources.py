"""Tests for the resource-vector algebra."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.resources import (
    NUM_RESOURCES,
    RESOURCE_KINDS,
    ResourceVector,
    cosine_fitness,
    sum_vectors,
)
from repro.errors import ResourceError

finite = st.floats(min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False)


def vec_strategy():
    return st.builds(ResourceVector, finite, finite, finite, finite)


class TestConstruction:
    def test_components(self):
        v = ResourceVector(cpu=4, memory_mb=8192, disk_mbps=100, net_mbps=200)
        assert v.cpu == 4
        assert v.memory_mb == 8192
        assert v.disk_mbps == 100
        assert v.net_mbps == 200

    def test_zeros(self):
        assert ResourceVector.zeros().is_zero()

    def test_full(self):
        assert list(ResourceVector.full(3.0)) == [3.0] * NUM_RESOURCES

    def test_from_array_roundtrip(self):
        v = ResourceVector(1, 2, 3, 4)
        assert ResourceVector.from_array(v.as_array()) == v

    def test_from_array_wrong_shape(self):
        with pytest.raises(ResourceError):
            ResourceVector.from_array([1.0, 2.0])

    def test_component_lookup(self):
        v = ResourceVector(1, 2, 3, 4)
        for i, kind in enumerate(RESOURCE_KINDS):
            assert v.component(kind) == i + 1

    def test_component_unknown(self):
        with pytest.raises(ResourceError):
            ResourceVector().component("gpus")

    def test_replace(self):
        v = ResourceVector(1, 2, 3, 4).replace(cpu=10)
        assert v.cpu == 10 and v.memory_mb == 2

    def test_replace_unknown_key(self):
        with pytest.raises(ResourceError):
            ResourceVector().replace(gpu=1)

    def test_as_array_is_copy(self):
        v = ResourceVector(1, 2, 3, 4)
        arr = v.as_array()
        arr[0] = 99
        assert v.cpu == 1


class TestArithmetic:
    def test_add_sub(self):
        a = ResourceVector(1, 2, 3, 4)
        b = ResourceVector(10, 20, 30, 40)
        assert a + b == ResourceVector(11, 22, 33, 44)
        assert b - a == ResourceVector(9, 18, 27, 36)

    def test_scalar_mul_div(self):
        a = ResourceVector(2, 4, 6, 8)
        assert a * 0.5 == ResourceVector(1, 2, 3, 4)
        assert 0.5 * a == a / 2

    def test_neg(self):
        assert -ResourceVector(1, 0, 0, 0) + ResourceVector(1, 0, 0, 0) == ResourceVector.zeros()

    def test_elementwise_min_max(self):
        a = ResourceVector(1, 20, 3, 40)
        b = ResourceVector(10, 2, 30, 4)
        assert a.elementwise_min(b) == ResourceVector(1, 2, 3, 4)
        assert a.elementwise_max(b) == ResourceVector(10, 20, 30, 40)

    def test_clamp_nonnegative(self):
        v = ResourceVector(1, 2, 3, 4) - ResourceVector(2, 1, 5, 0)
        assert v.clamp_nonnegative() == ResourceVector(0, 1, 0, 4)

    def test_fraction_of_zero_denominator_is_one(self):
        frac = ResourceVector(0, 5, 0, 0).fraction_of(ResourceVector(0, 10, 0, 0))
        assert frac[0] == 1.0  # 0/0 = no demand = fully satisfied
        assert frac[1] == 0.5

    @given(vec_strategy(), vec_strategy())
    def test_addition_commutes(self, a, b):
        assert a + b == b + a

    @given(vec_strategy())
    def test_sub_self_is_zero(self, a):
        assert (a - a).is_zero()

    @given(vec_strategy(), st.floats(min_value=0.0, max_value=100.0))
    def test_scaling_preserves_order(self, a, k):
        assert (a * k).fits_within(a * (k + 1.0) + ResourceVector.full(1e-9))


class TestComparisons:
    def test_fits_within(self):
        assert ResourceVector(1, 1, 1, 1).fits_within(ResourceVector(2, 2, 2, 2))
        assert not ResourceVector(3, 1, 1, 1).fits_within(ResourceVector(2, 2, 2, 2))

    def test_dominates(self):
        assert ResourceVector(2, 2, 2, 2).dominates(ResourceVector(1, 2, 1, 0))

    def test_equality_and_hash(self):
        a = ResourceVector(1, 2, 3, 4)
        b = ResourceVector(1, 2, 3, 4)
        assert a == b and hash(a) == hash(b)
        assert a != ResourceVector(1, 2, 3, 5)

    def test_any_positive(self):
        assert ResourceVector(0, 0, 0.1, 0).any_positive()
        assert not ResourceVector.zeros().any_positive()


class TestAggregates:
    def test_total_and_norm(self):
        v = ResourceVector(3, 4, 0, 0)
        assert v.total() == 7
        assert v.norm() == pytest.approx(5.0)

    def test_max_component(self):
        assert ResourceVector(3, 9, 1, 2).max_component() == 9

    def test_sum_vectors(self):
        vs = [ResourceVector(1, 1, 1, 1)] * 3
        assert sum_vectors(vs) == ResourceVector(3, 3, 3, 3)

    def test_sum_vectors_empty(self):
        assert sum_vectors([]).is_zero()


class TestCosineFitness:
    def test_parallel_vectors_score_one(self):
        d = ResourceVector(2, 4, 0, 0)
        a = ResourceVector(4, 8, 0, 0)
        assert cosine_fitness(d, a) == pytest.approx(1.0)

    def test_orthogonal_vectors_score_zero(self):
        d = ResourceVector(1, 0, 0, 0)
        a = ResourceVector(0, 1, 0, 0)
        assert cosine_fitness(d, a) == pytest.approx(0.0)

    def test_zero_availability_uses_epsilon(self):
        score = cosine_fitness(ResourceVector(1, 1, 0, 0), ResourceVector.zeros())
        assert score == pytest.approx(0.0)

    def test_zero_demand_rejected(self):
        with pytest.raises(ResourceError):
            cosine_fitness(ResourceVector.zeros(), ResourceVector(1, 1, 1, 1))

    @given(vec_strategy(), vec_strategy())
    def test_fitness_bounded(self, d, a):
        if not d.any_positive():
            return
        score = cosine_fitness(d, a)
        assert -1e-9 <= score <= 1.0 + 1e-9
