"""Tests for deflation-aware placement (Section 5.2)."""

import numpy as np
import pytest

from repro.core.placement import (
    STRATEGIES,
    CosineBestFit,
    FirstFit,
    ServerSnapshot,
    WorstFit,
    can_possibly_fit,
    filter_partition,
    partition_for_priority,
    vectorized_cosine_scores,
)
from repro.core.resources import ResourceVector
from repro.errors import PlacementError


def snap(sid, cap_cpu=48, used_cpu=0, defl_cpu=0, oc=1.0, partition=None):
    return ServerSnapshot(
        server_id=sid,
        capacity=ResourceVector(cap_cpu, 128 * 1024, 2000, 10_000),
        used=ResourceVector(used_cpu, 0, 0, 0),
        deflatable=ResourceVector(defl_cpu, 0, 0, 0),
        overcommitment=ResourceVector(oc, oc, oc, oc),
        partition=partition,
    )


class TestAvailability:
    def test_free_server(self):
        s = snap("a")
        assert s.availability().cpu == pytest.approx(48)

    def test_deflatable_reserve_counts(self):
        s = snap("a", used_cpu=48, defl_cpu=10)
        assert s.availability().cpu == pytest.approx(10)

    def test_reserve_discounted_by_overcommitment(self):
        s = snap("a", used_cpu=48, defl_cpu=10, oc=2.0)
        assert s.availability().cpu == pytest.approx(5.0)

    def test_max_supportable(self):
        s = snap("a", used_cpu=40, defl_cpu=12)
        assert s.max_supportable().cpu == pytest.approx(20)

    def test_can_possibly_fit(self):
        demand = ResourceVector(16, 1024, 0, 0)
        assert can_possibly_fit(demand, snap("a", used_cpu=40, defl_cpu=12))
        assert not can_possibly_fit(demand, snap("b", used_cpu=40, defl_cpu=2))


class TestStrategies:
    def test_cosine_prefers_matching_shape(self):
        # Memory-hungry demand should avoid the memory-starved server.
        demand = ResourceVector(2, 6 * 1024, 50, 100)
        lopsided = ServerSnapshot(
            server_id="lop",
            capacity=ResourceVector(48, 128 * 1024, 2000, 10_000),
            used=ResourceVector(0, 120 * 1024, 0, 0),  # memory nearly gone
            deflatable=ResourceVector.zeros(),
            overcommitment=ResourceVector.full(1.0),
        )
        balanced = snap("bal")
        chosen = CosineBestFit().choose(demand, [lopsided, balanced])
        assert chosen.server_id == "bal"

    def test_cosine_prefers_scarce_shape_match(self):
        # A CPU-only demand aligns best with a server whose remaining
        # resources are CPU-dominant (reduces fragmentation, as in Tetris).
        demand = ResourceVector(8, 1 * 1024, 0, 0)
        cpu_rich = ServerSnapshot(
            server_id="cpu-rich",
            capacity=ResourceVector(48, 128 * 1024, 0, 0),
            used=ResourceVector(0, 120 * 1024, 0, 0),
            deflatable=ResourceVector.zeros(),
            overcommitment=ResourceVector.full(1.0),
        )
        mem_rich = ServerSnapshot(
            server_id="mem-rich",
            capacity=ResourceVector(48, 128 * 1024, 0, 0),
            used=ResourceVector(44, 0, 0, 0),
            deflatable=ResourceVector.zeros(),
            overcommitment=ResourceVector.full(1.0),
        )
        chosen = CosineBestFit().choose(demand, [cpu_rich, mem_rich])
        assert chosen.server_id == "cpu-rich"

    def test_no_feasible_server_raises(self):
        demand = ResourceVector(64, 1024, 0, 0)
        with pytest.raises(PlacementError):
            CosineBestFit().choose(demand, [snap("a", used_cpu=48)])

    def test_first_fit_prefers_free_capacity(self):
        demand = ResourceVector(8, 1024, 0, 0)
        full_but_deflatable = snap("a", used_cpu=48, defl_cpu=20)
        empty = snap("b")
        chosen = FirstFit().choose(demand, [full_but_deflatable, empty])
        assert chosen.server_id == "b"

    def test_worst_fit_prefers_emptiest(self):
        demand = ResourceVector(4, 1024, 0, 0)
        chosen = WorstFit().choose(demand, [snap("a", used_cpu=30), snap("b", used_cpu=10)])
        assert chosen.server_id == "b"

    def test_rank_is_deterministic(self):
        demand = ResourceVector(4, 1024, 0, 0)
        snaps = [snap("b"), snap("a")]
        order1 = [s.server_id for s in CosineBestFit().rank(demand, snaps)]
        order2 = [s.server_id for s in CosineBestFit().rank(demand, list(reversed(snaps)))]
        assert order1 == order2

    def test_registry(self):
        assert {"cosine-best-fit", "first-fit", "worst-fit"} <= set(STRATEGIES)


class TestPartitions:
    def test_filter_none_returns_all(self):
        snaps = [snap("a", partition="pool-0"), snap("b")]
        assert len(filter_partition(snaps, None)) == 2

    def test_filter_label(self):
        snaps = [snap("a", partition="pool-0"), snap("b", partition="pool-1")]
        out = filter_partition(snaps, "pool-1")
        assert [s.server_id for s in out] == ["b"]

    def test_partition_for_priority_buckets(self):
        assert partition_for_priority(0.2) == "pool-0"
        assert partition_for_priority(0.4) == "pool-1"
        assert partition_for_priority(0.6) == "pool-2"
        assert partition_for_priority(0.8) == "pool-3"


class TestVectorizedScores:
    def test_matches_scalar_fitness(self):
        from repro.core.resources import cosine_fitness

        demand = ResourceVector(4, 8192, 10, 10)
        avail = [snap("a", used_cpu=10).availability(), snap("b", used_cpu=44).availability()]
        mat = np.vstack([a.as_array() for a in avail])
        scores = vectorized_cosine_scores(demand.as_array(), mat)
        for i, a in enumerate(avail):
            assert scores[i] == pytest.approx(cosine_fitness(demand, a))

    def test_zero_demand_rejected(self):
        with pytest.raises(PlacementError):
            vectorized_cosine_scores(np.zeros(4), np.ones((2, 4)))

    def test_bad_shape_rejected(self):
        with pytest.raises(PlacementError):
            vectorized_cosine_scores(np.ones(3), np.ones((2, 3)))
