"""Tests for the VM model: specs, priorities, allocation state."""

import pytest

from repro.core.resources import ResourceVector
from repro.core.vm import (
    PRIORITY_LEVELS,
    VMAllocation,
    VMClass,
    VMSpec,
    on_demand_spec,
    priority_from_p95,
)
from repro.errors import ResourceError


def cap(cpu=4, mem=8192):
    return ResourceVector(cpu=cpu, memory_mb=mem, disk_mbps=100, net_mbps=100)


class TestVMSpec:
    def test_defaults(self):
        spec = VMSpec(capacity=cap())
        assert spec.deflatable
        assert spec.min_fraction == 0.0
        assert spec.vm_class is VMClass.UNKNOWN

    def test_unique_ids(self):
        ids = {VMSpec(capacity=cap()).vm_id for _ in range(100)}
        assert len(ids) == 100

    def test_priority_bounds(self):
        with pytest.raises(ResourceError):
            VMSpec(capacity=cap(), priority=0.0)
        with pytest.raises(ResourceError):
            VMSpec(capacity=cap(), priority=1.5)

    def test_min_fraction_bounds(self):
        with pytest.raises(ResourceError):
            VMSpec(capacity=cap(), min_fraction=-0.1)
        with pytest.raises(ResourceError):
            VMSpec(capacity=cap(), min_fraction=1.1)

    def test_zero_capacity_rejected(self):
        with pytest.raises(ResourceError):
            VMSpec(capacity=ResourceVector.zeros())

    def test_min_allocation(self):
        spec = VMSpec(capacity=cap(cpu=10), min_fraction=0.2)
        assert spec.min_allocation.cpu == pytest.approx(2.0)

    def test_deflatable_amount(self):
        spec = VMSpec(capacity=cap(cpu=10), min_fraction=0.25)
        assert spec.deflatable_amount.cpu == pytest.approx(7.5)

    def test_on_demand_helper(self):
        spec = on_demand_spec(cap())
        assert not spec.deflatable
        assert spec.priority == 1.0


class TestPriorityFromP95:
    @pytest.mark.parametrize(
        "p95,expected",
        [
            (0.0, PRIORITY_LEVELS[0]),
            (0.32, PRIORITY_LEVELS[0]),
            (0.33, PRIORITY_LEVELS[1]),
            (0.65, PRIORITY_LEVELS[1]),
            (0.70, PRIORITY_LEVELS[2]),
            (0.80, PRIORITY_LEVELS[3]),
            (1.0, PRIORITY_LEVELS[3]),
        ],
    )
    def test_buckets(self, p95, expected):
        assert priority_from_p95(p95) == expected

    def test_out_of_range(self):
        with pytest.raises(ResourceError):
            priority_from_p95(1.2)

    def test_higher_peak_never_lowers_priority(self):
        prios = [priority_from_p95(p / 100) for p in range(0, 101, 5)]
        assert prios == sorted(prios)


class TestVMAllocation:
    def test_starts_at_capacity(self):
        alloc = VMAllocation(spec=VMSpec(capacity=cap()))
        assert alloc.current == alloc.spec.capacity
        assert not alloc.is_deflated

    def test_set_allocation_validates_floor(self):
        spec = VMSpec(capacity=cap(cpu=10), min_fraction=0.5)
        alloc = VMAllocation(spec=spec)
        with pytest.raises(ResourceError):
            alloc.set_allocation(spec.capacity * 0.25)

    def test_set_allocation_validates_ceiling(self):
        spec = VMSpec(capacity=cap(cpu=10))
        alloc = VMAllocation(spec=spec)
        with pytest.raises(ResourceError):
            alloc.set_allocation(spec.capacity * 2)

    def test_deflation_fractions(self):
        spec = VMSpec(capacity=cap(cpu=10, mem=1000))
        alloc = VMAllocation(spec=spec)
        alloc.set_allocation(spec.capacity * 0.75)
        fr = alloc.deflation_fractions
        assert fr.cpu == pytest.approx(0.25)
        assert fr.memory_mb == pytest.approx(0.25)
        assert alloc.cpu_deflation == pytest.approx(0.25)

    def test_reclaimed_and_headroom(self):
        spec = VMSpec(capacity=cap(cpu=10), min_fraction=0.2)
        alloc = VMAllocation(spec=spec)
        alloc.set_allocation(spec.capacity * 0.5)
        assert alloc.reclaimed.cpu == pytest.approx(5.0)
        assert alloc.headroom.cpu == pytest.approx(3.0)  # 5 - 2

    def test_snap_to_box_absorbs_fp_drift(self):
        spec = VMSpec(capacity=cap(cpu=10), min_fraction=0.1)
        alloc = VMAllocation(spec=spec)
        # A hair above capacity within tolerance snaps back to capacity.
        alloc.set_allocation(spec.capacity * (1 + 1e-8))
        assert alloc.current.fits_within(spec.capacity)
