"""Closed-form water-fill vs the pinned bisection (docs/performance.md).

The exact sorted-breakpoint solver in ``repro.core.deflation`` replaced the
original 80-iteration bisection — the repo's first deliberate numerical
change.  The evidence that licensed re-pinning the golden suites lives
here, in three layers:

1. **Agreement**: on hundreds of seeded random instances (including
   adversarial shapes the simulator never produces) the closed form and
   the pinned ``repro.core.waterfill_reference`` bisection agree to
   <= 1e-9 per element.
2. **Exact invariants the bisection could never guarantee**: the clipped
   allocation conserves the requested reclaim to near machine precision,
   respects per-VM bounds exactly, and is monotone in the requested
   amount.
3. **Policy plumbing**: the priority policy's cached ``reclaim_plan`` is
   bit-identical to its one-shot trusted entry, and policy-level
   allocations stay inside ``[m_i^eff, M_i]``.

Every instance is reproducible from the seed in the failure message.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.deflation import _WaterfillPlan, _waterfill_reclaim, get_policy
from repro.core.waterfill_reference import waterfill_reclaim_bisect

SEED = 20260808
N_INSTANCES = 240
AGREEMENT_TOL = 1e-9

#: The simulator's priority weights never reach 1.0 (p95-derived levels),
#: but the raw solver must also survive shapes the policies avoid.
PRIORITY_LEVELS = (0.2, 0.4, 0.6, 0.8)


def _random_instance(rng: np.random.Generator, trial: int):
    """One (base, weight, cap) pool, biased toward solver corner cases."""
    shape = trial % 6
    if shape == 0:  # degenerate single-VM pool
        n = 1
    elif shape == 1:  # tiny pools
        n = int(rng.integers(2, 5))
    else:
        n = int(rng.integers(5, 60))
    cap = rng.uniform(0.0, 8.0, n)
    if shape == 2:  # policy-shaped: base == cap == pool, weight = prio*pool
        base = cap.copy()
        weight = rng.choice(PRIORITY_LEVELS, n) * cap
        return base, weight, cap
    base = cap * rng.uniform(0.2, 1.0, n)
    weight = rng.uniform(0.05, 1.0, n) * np.maximum(base, 1e-3)
    if shape == 3:  # zero-weight terms mixed in
        weight[rng.random(n) < 0.4] = 0.0
    if shape == 4 and n >= 4:  # tied breakpoints: duplicated (base, cap, w)
        k = n // 2
        base[:k] = base[k : 2 * k]
        cap[:k] = cap[k : 2 * k]
        weight[:k] = weight[k : 2 * k]
    if shape == 5:  # cap-saturated: most of the pool pinned at its cap
        base = cap * rng.uniform(0.95, 1.0, n)
    return base, weight, cap


def _amounts(rng: np.random.Generator, cap: np.ndarray):
    total = float(cap.sum())
    fracs = (0.0, 1e-12, 0.01, 0.25, 0.5, 0.9, 0.999, 1.0)
    draws = rng.uniform(0.0, 1.0, 4)
    return [total * f for f in fracs] + [total * float(d) for d in draws]


def _max_achievable(base, weight, cap) -> float:
    """Largest clipped sum any alpha can reach (caps for weighted terms)."""
    pos = weight > 0
    return float(cap[pos].sum() + np.clip(base[~pos], 0.0, cap[~pos]).sum())


def test_closed_form_matches_pinned_bisection():
    """<= 1e-9 agreement on N_INSTANCES seeded instances x ~12 amounts."""
    rng = np.random.default_rng(SEED)
    checked = 0
    for trial in range(N_INSTANCES):
        base, weight, cap = _random_instance(rng, trial)
        for amount in _amounts(rng, cap):
            got = _waterfill_reclaim(base, weight, cap, amount)
            ref = waterfill_reclaim_bisect(base, weight, cap, amount)
            diff = float(np.abs(got - ref).max())
            assert diff <= AGREEMENT_TOL, (
                f"seed={SEED} trial={trial} amount={amount}: |closed-bisect|={diff}"
            )
            checked += 1
    assert checked >= 200 * 8


def test_exact_invariants():
    """Bounds, conservation and monotonicity — exact properties the
    bisection only approached."""
    rng = np.random.default_rng(SEED + 1)
    for trial in range(N_INSTANCES):
        base, weight, cap = _random_instance(rng, trial)
        total = float(cap.sum())
        achievable = _max_achievable(base, weight, cap)
        prev = np.zeros_like(cap)
        for frac in np.linspace(0.0, 1.0, 17):
            amount = total * float(frac)
            x = _waterfill_reclaim(base, weight, cap, amount)
            ctx = f"seed={SEED + 1} trial={trial} frac={frac}"
            # Per-VM bounds hold exactly: clip + in-cap rescale by design.
            assert (x >= 0.0).all(), ctx
            assert (x <= cap).all(), ctx
            # Conservation: whenever the pool can express `amount`, the
            # clipped total hits it to near machine precision.
            if 1e-9 < amount < min(total, achievable) - 1e-9:
                assert abs(float(x.sum()) - amount) <= 1e-9 * max(1.0, amount), ctx
            # Monotone in R: raising the requested reclaim never lowers
            # any VM's share (1e-9 slack for the rescale rounding).
            assert (x >= prev - 1e-9).all(), ctx
            prev = x


def test_guard_regimes_bit_identical():
    """The clamped regimes (zero request, full pool) are exact copies."""
    rng = np.random.default_rng(SEED + 2)
    for trial in range(40):
        base, weight, cap = _random_instance(rng, trial)
        total = float(cap.sum())
        for amount in (0.0, 1e-10, total, total * 1.001, total - 1e-10):
            got = _waterfill_reclaim(base, weight, cap, amount)
            ref = waterfill_reclaim_bisect(base, weight, cap, amount)
            assert (got == ref).all(), f"trial={trial} amount={amount}"


def test_plan_reuse_is_bit_identical():
    """A reused _WaterfillPlan returns the same bits as one-shot solves."""
    rng = np.random.default_rng(SEED + 3)
    for trial in range(60):
        base, weight, cap = _random_instance(rng, trial)
        plan = _WaterfillPlan(base, weight, cap)
        for amount in _amounts(rng, cap):
            assert (plan.reclaim(amount) == _waterfill_reclaim(base, weight, cap, amount)).all()


@pytest.mark.parametrize("policy_name", ["priority", "priority-eq3"])
def test_priority_policy_allocations_stay_in_bounds(policy_name):
    """Policy-level: allocations inside [m_i^eff, M_i], reclaim conserved."""
    policy = get_policy(policy_name)
    rng = np.random.default_rng(SEED + 4)
    for trial in range(80):
        n = int(rng.integers(1, 40))
        caps = rng.integers(1, 33, n).astype(np.float64)
        mins = caps * rng.uniform(0.0, 0.9, n)
        prios = rng.choice(PRIORITY_LEVELS, n)
        eff_min = np.maximum(mins, prios * caps) if policy.priority_floor else mins
        pool_total = float((caps - eff_min).sum())
        for frac in (0.1, 0.5, 0.95):
            required = pool_total * frac
            res = policy.target_allocations_trusted(caps, mins, prios, required)
            ctx = f"seed={SEED + 4} trial={trial} frac={frac}"
            assert (res.allocations >= eff_min - 1e-9).all(), ctx
            assert (res.allocations <= caps + 1e-12).all(), ctx
            if required > 1e-9:
                assert abs(res.total_reclaimed - required) <= 1e-6, ctx
            assert res.satisfied, ctx


@pytest.mark.parametrize("policy_name", ["priority", "priority-eq3"])
def test_reclaim_plan_matches_trusted_entry(policy_name):
    """The cached plan path is bit-for-bit the one-shot trusted path."""
    policy = get_policy(policy_name)
    rng = np.random.default_rng(SEED + 5)
    for trial in range(60):
        n = int(rng.integers(1, 30))
        caps = rng.integers(1, 33, n).astype(np.float64)
        mins = caps * rng.uniform(0.0, 0.9, n)
        prios = rng.choice(PRIORITY_LEVELS, n)
        plan = policy.reclaim_plan(caps, mins, prios)
        eff_min = np.maximum(mins, prios * caps) if policy.priority_floor else mins
        pool_total = float((caps - eff_min).sum())
        for required in (-1.0, 0.0, 0.3 * pool_total, 0.9 * pool_total,
                         pool_total, float(caps.sum())):
            one_shot = policy.target_allocations_trusted(caps, mins, prios, required)
            cached = plan(required)
            assert (one_shot.allocations == cached.allocations).all(), (
                f"seed={SEED + 5} trial={trial} required={required}"
            )
            assert (one_shot.reclaimed == cached.reclaimed).all()
            assert one_shot.satisfied == cached.satisfied


@pytest.mark.slow
def test_closed_form_matches_pinned_bisection_wide():
    """Slow tier: a much wider randomized sweep of the same agreement."""
    rng = np.random.default_rng(SEED + 6)
    for trial in range(1500):
        base, weight, cap = _random_instance(rng, trial)
        for amount in _amounts(rng, cap):
            got = _waterfill_reclaim(base, weight, cap, amount)
            ref = waterfill_reclaim_bisect(base, weight, cap, amount)
            assert float(np.abs(got - ref).max()) <= AGREEMENT_TOL, (
                f"seed={SEED + 6} trial={trial} amount={amount}"
            )
