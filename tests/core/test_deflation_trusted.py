"""The trusted fast entry must never bypass subclass policy overrides."""

import numpy as np
import pytest

from repro.core.deflation import (
    DeterministicPolicy,
    PriorityPolicy,
    ProportionalPolicy,
)

STOCK = [ProportionalPolicy, PriorityPolicy, DeterministicPolicy]


@pytest.mark.parametrize("base_cls", STOCK)
def test_trusted_matches_validated_for_stock_policies(base_cls):
    caps = np.array([8.0, 4.0, 2.0])
    mins = np.array([1.0, 0.5, 0.25])
    prios = np.array([0.2, 0.4, 0.8])
    policy = base_cls()
    a = policy.target_allocations(caps, mins, prios, 3.0)
    b = policy.target_allocations_trusted(caps, mins, prios, 3.0)
    assert a.reclaimed.tolist() == b.reclaimed.tolist()
    assert a.satisfied == b.satisfied


@pytest.mark.parametrize("base_cls", STOCK)
def test_trusted_honors_subclass_target_allocations(base_cls):
    class Custom(base_cls):
        name = "custom"

        def target_allocations(self, capacities, minimums, priorities, required):
            result = super().target_allocations(
                capacities, minimums, priorities, required
            )
            # A deliberately visible twist: everything doubled then clamped.
            twisted = np.minimum(result.reclaimed * 0.5, capacities)
            return type(result)(
                allocations=capacities - twisted,
                reclaimed=twisted,
                satisfied=result.satisfied,
            )

    caps = np.array([8.0, 4.0])
    mins = np.array([0.5, 0.5])
    prios = np.array([0.3, 0.6])
    custom = Custom()
    via_hook = custom.target_allocations(caps, mins, prios, 2.0)
    via_trusted = custom.target_allocations_trusted(caps, mins, prios, 2.0)
    assert via_trusted.reclaimed.tolist() == via_hook.reclaimed.tolist(), (
        "target_allocations_trusted must route through the subclass override"
    )


@pytest.mark.parametrize("base_cls", STOCK)
def test_reclaim_plan_matches_trusted_for_stock_policies(base_cls):
    caps = np.array([8.0, 4.0, 2.0])
    mins = np.array([1.0, 0.5, 0.25])
    prios = np.array([0.2, 0.4, 0.8])
    policy = base_cls()
    plan = policy.reclaim_plan(caps, mins, prios)
    for required in (-1.0, 0.0, 3.0, 50.0):
        one_shot = policy.target_allocations_trusted(caps, mins, prios, required)
        cached = plan(required)
        assert cached.reclaimed.tolist() == one_shot.reclaimed.tolist()
        assert cached.satisfied == one_shot.satisfied


@pytest.mark.parametrize("base_cls", STOCK)
def test_reclaim_plan_honors_subclass_target_allocations(base_cls):
    """The cached plan path (like the trusted entry) must route subclass
    overrides through the documented hook, never the built-in fast math."""

    class Custom(base_cls):
        name = "custom"

        def target_allocations(self, capacities, minimums, priorities, required):
            result = super().target_allocations(
                capacities, minimums, priorities, required
            )
            twisted = np.minimum(result.reclaimed * 0.5, capacities)
            return type(result)(
                allocations=capacities - twisted,
                reclaimed=twisted,
                satisfied=result.satisfied,
            )

    caps = np.array([8.0, 4.0])
    mins = np.array([0.5, 0.5])
    prios = np.array([0.3, 0.6])
    custom = Custom()
    plan = custom.reclaim_plan(caps, mins, prios)
    via_hook = custom.target_allocations(caps, mins, prios, 2.0)
    assert plan(2.0).reclaimed.tolist() == via_hook.reclaimed.tolist(), (
        "reclaim_plan must route through the subclass override"
    )
