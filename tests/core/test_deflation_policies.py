"""Tests for the server-level deflation policies (paper Eqs. 1-4 + binary).

The key invariants, verified both example-based and property-based:

* conservation: total reclaimed >= requested whenever feasible (exactly ==
  for the proportional family);
* bounds: no VM below its floor, none above its capacity, reclaim >= 0;
* proportionality: Eq. 1 reclaims in proportion to deflatable size;
* priority direction: lower priority yields more reclaim per unit pool;
* recompute semantics make reinflation the exact inverse of deflation.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.deflation import (
    POLICIES,
    DeterministicPolicy,
    PriorityPolicy,
    ProportionalPolicy,
    get_policy,
)
from repro.errors import DeflationError

ALL_POLICY_NAMES = sorted(POLICIES)


def arrays(n, rng_seed=0):
    rng = np.random.default_rng(rng_seed)
    caps = rng.uniform(1, 32, size=n)
    mins = caps * rng.uniform(0.0, 0.3, size=n)
    prios = rng.choice([0.2, 0.4, 0.6, 0.8], size=n)
    return caps, mins, prios


class TestProportional:
    def test_eq1_proportional_to_size(self):
        pol = ProportionalPolicy()
        caps = np.array([10.0, 20.0, 30.0])
        res = pol.target_allocations(caps, np.zeros(3), np.full(3, 0.5), 12.0)
        # x_i = M_i * R / sum(M): 2, 4, 6
        np.testing.assert_allclose(res.reclaimed, [2.0, 4.0, 6.0])
        assert res.satisfied

    def test_eq2_respects_minimums(self):
        pol = ProportionalPolicy()
        caps = np.array([10.0, 10.0])
        mins = np.array([8.0, 0.0])
        res = pol.target_allocations(caps, mins, np.full(2, 0.5), 6.0)
        # Pools are (2, 10); reclaim proportional to pool: (1, 5).
        np.testing.assert_allclose(res.reclaimed, [1.0, 5.0])
        assert np.all(res.allocations >= mins - 1e-9)

    def test_zero_required_returns_full(self):
        pol = ProportionalPolicy()
        caps, mins, prios = arrays(5)
        res = pol.target_allocations(caps, mins, prios, 0.0)
        np.testing.assert_allclose(res.allocations, caps)

    def test_infeasible_flags_unsatisfied(self):
        pol = ProportionalPolicy()
        caps = np.array([4.0, 4.0])
        mins = np.array([2.0, 2.0])
        res = pol.target_allocations(caps, mins, np.full(2, 0.5), 100.0)
        assert not res.satisfied
        np.testing.assert_allclose(res.allocations, mins)

    def test_empty_pool(self):
        pol = ProportionalPolicy()
        res = pol.target_allocations(np.array([]), np.array([]), np.array([]), 5.0)
        assert not res.satisfied
        assert res.total_reclaimed == 0.0


class TestPriority:
    def test_eq3_reduces_to_proportional_for_equal_priorities(self):
        eq3 = PriorityPolicy(priority_floor=False)
        caps = np.array([10.0, 20.0, 30.0])
        res = eq3.target_allocations(caps, np.zeros(3), np.full(3, 0.5), 12.0)
        np.testing.assert_allclose(res.reclaimed, [2.0, 4.0, 6.0], atol=1e-6)

    def test_low_priority_reclaims_more(self):
        pol = PriorityPolicy(priority_floor=False)
        caps = np.array([10.0, 10.0])
        prios = np.array([0.2, 0.8])
        res = pol.target_allocations(caps, np.zeros(2), prios, 8.0)
        assert res.reclaimed[0] > res.reclaimed[1]
        assert res.total_reclaimed == pytest.approx(8.0)

    def test_eq4_priority_floor(self):
        pol = PriorityPolicy(priority_floor=True)
        caps = np.array([10.0, 10.0])
        prios = np.array([0.2, 0.8])
        # Maximum: (10-2) + (10-8) = 10
        assert pol.max_reclaimable(caps, np.zeros(2), prios) == pytest.approx(10.0)
        res = pol.target_allocations(caps, np.zeros(2), prios, 10.0)
        np.testing.assert_allclose(res.allocations, [2.0, 8.0])

    def test_small_pressure_spares_high_priority(self):
        pol = PriorityPolicy(priority_floor=False)
        caps = np.array([10.0, 10.0])
        prios = np.array([0.2, 0.9])
        res = pol.target_allocations(caps, np.zeros(2), prios, 1.0)
        # Water-filling concentrates small reclaims on the low-priority VM.
        assert res.reclaimed[0] == pytest.approx(1.0, abs=1e-6)
        assert res.reclaimed[1] == pytest.approx(0.0, abs=1e-6)


class TestDeterministic:
    def test_binary_in_priority_order(self):
        pol = DeterministicPolicy()
        caps = np.array([10.0, 20.0, 30.0])
        prios = np.array([0.2, 0.5, 0.8])
        res = pol.target_allocations(caps, np.zeros(3), prios, 15.0)
        # VM0 -> 0.2*10=2 (reclaim 8); VM1 -> 0.5*20=10 (reclaim 10); VM2 full.
        np.testing.assert_allclose(res.allocations, [2.0, 10.0, 30.0])
        assert res.total_reclaimed == pytest.approx(18.0)  # overshoot allowed

    def test_stops_when_satisfied(self):
        pol = DeterministicPolicy()
        caps = np.array([10.0, 10.0])
        prios = np.array([0.2, 0.4])
        res = pol.target_allocations(caps, np.zeros(2), prios, 5.0)
        # First VM alone yields 8 >= 5; second untouched.
        np.testing.assert_allclose(res.allocations, [2.0, 10.0])

    def test_respects_explicit_minimum_over_priority_floor(self):
        pol = DeterministicPolicy()
        caps = np.array([10.0])
        mins = np.array([5.0])
        prios = np.array([0.2])
        res = pol.target_allocations(caps, mins, prios, 99.0)
        assert res.allocations[0] == pytest.approx(5.0)
        assert not res.satisfied


class TestValidation:
    def test_mismatched_shapes(self):
        pol = ProportionalPolicy()
        with pytest.raises(DeflationError):
            pol.target_allocations(np.ones(3), np.zeros(2), np.full(3, 0.5), 1.0)

    def test_minimum_above_capacity(self):
        pol = ProportionalPolicy()
        with pytest.raises(DeflationError):
            pol.target_allocations(np.array([1.0]), np.array([2.0]), np.array([0.5]), 0.5)

    def test_bad_priority(self):
        pol = PriorityPolicy()
        with pytest.raises(DeflationError):
            pol.target_allocations(np.ones(1), np.zeros(1), np.array([0.0]), 0.5)

    def test_get_policy_unknown(self):
        with pytest.raises(DeflationError):
            get_policy("nope")

    def test_registry_contents(self):
        assert {"proportional", "priority", "deterministic"} <= set(POLICIES)


# ---------------------------------------------------------------------------
# Property-based invariants across all policies.
# ---------------------------------------------------------------------------

pool_strategy = st.integers(min_value=1, max_value=12)
seed_strategy = st.integers(min_value=0, max_value=10_000)
frac_strategy = st.floats(min_value=0.0, max_value=1.2)


@settings(max_examples=60, deadline=None)
@given(n=pool_strategy, seed=seed_strategy, frac=frac_strategy, name=st.sampled_from(ALL_POLICY_NAMES))
def test_policy_bounds_invariant(n, seed, frac, name):
    """No policy ever allocates below floor or above capacity."""
    caps, mins, prios = arrays(n, seed)
    pol = POLICIES[name]
    max_r = pol.max_reclaimable(caps, mins, prios)
    res = pol.target_allocations(caps, mins, prios, frac * max_r)
    assert np.all(res.allocations <= caps + 1e-6)
    assert np.all(res.reclaimed >= -1e-9)
    # Policy-specific floors: proportional respects mins; priority and
    # deterministic respect max(mins, pi*caps).
    if name == "proportional":
        floors = mins
    elif name == "priority-eq3":
        floors = mins
    else:
        floors = np.maximum(mins, prios * caps)
    assert np.all(res.allocations >= floors - 1e-6)


@settings(max_examples=60, deadline=None)
@given(n=pool_strategy, seed=seed_strategy, frac=st.floats(min_value=0.0, max_value=1.0),
       name=st.sampled_from(ALL_POLICY_NAMES))
def test_policy_conservation_invariant(n, seed, frac, name):
    """Feasible requests are satisfied: total reclaimed >= requested."""
    caps, mins, prios = arrays(n, seed)
    pol = POLICIES[name]
    required = frac * pol.max_reclaimable(caps, mins, prios)
    res = pol.target_allocations(caps, mins, prios, required)
    assert res.satisfied
    assert res.total_reclaimed >= required - 1e-5


@settings(max_examples=40, deadline=None)
@given(n=pool_strategy, seed=seed_strategy, name=st.sampled_from(ALL_POLICY_NAMES))
def test_reinflation_is_exact_inverse(n, seed, name):
    """Recompute-from-capacity: required=0 restores full allocations even
    after an intermediate deflation (Section 5.1.3's reinflation)."""
    caps, mins, prios = arrays(n, seed)
    pol = POLICIES[name]
    pol.target_allocations(caps, mins, prios, 0.5 * pol.max_reclaimable(caps, mins, prios))
    res = pol.target_allocations(caps, mins, prios, 0.0)
    np.testing.assert_allclose(res.allocations, caps)


@settings(max_examples=40, deadline=None)
@given(n=pool_strategy, seed=seed_strategy,
       f1=st.floats(min_value=0.0, max_value=1.0), f2=st.floats(min_value=0.0, max_value=1.0))
def test_proportional_monotone_in_pressure(n, seed, f1, f2):
    """More pressure never increases anyone's allocation (proportional)."""
    caps, mins, prios = arrays(n, seed)
    pol = ProportionalPolicy()
    lo, hi = sorted([f1, f2])
    max_r = pol.max_reclaimable(caps, mins, prios)
    a_lo = pol.target_allocations(caps, mins, prios, lo * max_r).allocations
    a_hi = pol.target_allocations(caps, mins, prios, hi * max_r).allocations
    assert np.all(a_hi <= a_lo + 1e-6)
