"""Tests for the feasibility analysis (underallocation math, Figure 4)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TraceError
from repro.feasibility.analysis import (
    deflation_sweep,
    grouped_deflation_sweep,
    max_safe_deflation_per_vm,
    throughput_loss,
    underallocation_fraction,
    underallocation_series,
    utilization_summary,
)
from repro.feasibility.stats import boxplot_stats, percentile_summary


class TestUnderallocationFraction:
    def test_basic(self):
        util = np.array([0.1, 0.5, 0.9, 0.95])
        # At 20% deflation the allocation is 0.8; two samples exceed it.
        assert underallocation_fraction(util, 0.2) == pytest.approx(0.5)

    def test_zero_deflation_never_underallocated(self):
        util = np.array([0.2, 1.0, 0.99])
        assert underallocation_fraction(util, 0.0) == 0.0

    def test_boundary_not_counted(self):
        # Usage exactly at the allocation is not underallocation.
        util = np.array([0.5])
        assert underallocation_fraction(util, 0.5) == 0.0

    def test_validation(self):
        with pytest.raises(TraceError):
            underallocation_fraction(np.array([0.1]), 1.0)
        with pytest.raises(TraceError):
            underallocation_fraction(np.array([]), 0.1)

    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=999),
        d1=st.floats(min_value=0.0, max_value=0.98),
        d2=st.floats(min_value=0.0, max_value=0.98),
    )
    def test_monotone_in_deflation(self, seed, d1, d2):
        rng = np.random.default_rng(seed)
        util = rng.uniform(0, 1, size=50)
        lo, hi = sorted([d1, d2])
        assert underallocation_fraction(util, lo) <= underallocation_fraction(util, hi)


class TestFigure4Math:
    def test_series_and_totals(self):
        util = np.array([0.2, 0.8, 0.6, 0.1])
        alloc = np.array([0.5, 0.5, 0.5, 0.5])
        overflow, total, time_frac = underallocation_series(util, alloc)
        np.testing.assert_allclose(overflow, [0.0, 0.3, 0.1, 0.0])
        assert total == pytest.approx(0.4)
        assert time_frac == pytest.approx(0.5)

    def test_alignment_enforced(self):
        with pytest.raises(TraceError):
            underallocation_series(np.zeros(3), np.zeros(4))

    def test_throughput_loss(self):
        util = np.array([1.0, 1.0])
        alloc = np.array([0.75, 0.75])
        assert throughput_loss(util, alloc) == pytest.approx(0.25)

    def test_throughput_loss_zero_demand(self):
        assert throughput_loss(np.zeros(5), np.zeros(5)) == 0.0

    def test_loss_bounded_by_one(self):
        util = np.ones(4)
        alloc = np.zeros(4)
        assert throughput_loss(util, alloc) == pytest.approx(1.0)


class TestSweeps:
    def test_sweep_table_shape(self):
        series = [np.random.default_rng(i).uniform(0, 1, 100) for i in range(10)]
        res = deflation_sweep(series, levels=(0.1, 0.5))
        assert len(res.as_table()) == 2
        assert res.medians().shape == (2,)

    def test_sweep_empty_rejected(self):
        with pytest.raises(TraceError):
            deflation_sweep([], levels=(0.1,))

    def test_grouped_sweep_skips_empty_groups(self):
        series = [np.array([0.5, 0.6])]
        out = grouped_deflation_sweep({"a": series, "b": []}, levels=(0.3,))
        assert set(out) == {"a"}

    def test_max_safe_deflation(self):
        # Constant 30% utilization: safe up to 70% deflation (1% tolerance).
        series = [np.full(100, 0.3)]
        safe = max_safe_deflation_per_vm(series, tolerance=0.01)
        assert safe[0] == pytest.approx(0.69, abs=0.02)

    def test_utilization_summary(self):
        stats = utilization_summary([np.array([0.0, 0.5, 1.0])])
        assert stats.mean == pytest.approx(0.5)


class TestStats:
    def test_boxplot_five_numbers(self):
        stats = boxplot_stats(np.arange(101) / 100)
        assert stats.median == pytest.approx(0.5)
        assert stats.q1 == pytest.approx(0.25)
        assert stats.q3 == pytest.approx(0.75)
        assert stats.whisker_lo == 0.0
        assert stats.whisker_hi == 1.0
        assert stats.n == 101

    def test_boxplot_outliers_excluded_from_whiskers(self):
        data = np.concatenate([np.full(99, 0.5), [100.0]])
        stats = boxplot_stats(data)
        assert stats.whisker_hi == pytest.approx(0.5)

    def test_boxplot_empty_rejected(self):
        with pytest.raises(TraceError):
            boxplot_stats(np.array([]))

    def test_degenerate_distribution(self):
        stats = boxplot_stats(np.full(10, 0.3))
        assert stats.whisker_lo == stats.whisker_hi == pytest.approx(0.3)

    def test_percentile_summary(self):
        out = percentile_summary(np.arange(101), (50, 99))
        assert out[50] == pytest.approx(50)
        assert out[99] == pytest.approx(99)

    def test_percentile_summary_empty(self):
        with pytest.raises(TraceError):
            percentile_summary(np.array([]))
