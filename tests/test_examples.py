"""Smoke tests: every example script must run to completion."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
ALL_EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))

#: Fast examples run in CI every time; the heavier simulations are covered
#: by their own unit/experiment tests and only smoke-checked here.
FAST = [
    "quickstart.py",
    "hybrid_mechanisms.py",
    "feasibility_study.py",
    "scenario_pipeline.py",
    "failure_injection.py",
    "correlated_failures.py",
    "sharded_engine.py",
]


def _run(name: str, timeout: int = 240) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )


class TestExamples:
    def test_expected_examples_exist(self):
        assert set(FAST) <= set(ALL_EXAMPLES)
        assert len(ALL_EXAMPLES) >= 3  # the deliverable minimum

    @pytest.mark.parametrize("name", FAST)
    def test_fast_examples_run(self, name):
        proc = _run(name)
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.strip()

    def test_quickstart_shows_deflation_and_reinflation(self):
        out = _run("quickstart.py").stdout
        assert "deflated" in out
        assert "after departure" in out
        assert "invariants hold" in out
