"""Tests for the centralized cluster manager (three-step placement)."""

import pytest

from repro.cluster.manager import ClusterManager, make_uniform_cluster
from repro.cluster.server import Server
from repro.core.deflation import ProportionalPolicy
from repro.core.resources import ResourceVector
from repro.core.vm import VMSpec, on_demand_spec
from repro.errors import AdmissionRejected, PlacementError


def capacity():
    return ResourceVector(cpu=48, memory_mb=128 * 1024, disk_mbps=2000, net_mbps=10_000)


def vm(cpu=16, mem_gb=32, priority=0.5, deflatable=True):
    return VMSpec(
        capacity=ResourceVector(cpu, mem_gb * 1024, 100, 200),
        priority=priority,
        deflatable=deflatable,
    )


class TestPlacement:
    def test_spreads_load(self):
        cluster = make_uniform_cluster(3, capacity())
        servers = {cluster.request_vm(vm()).server_id for _ in range(3)}
        assert len(servers) == 3  # availability-driven balancing

    def test_locate_and_terminate(self):
        cluster = make_uniform_cluster(2, capacity())
        spec = vm()
        decision = cluster.request_vm(spec)
        assert cluster.locate(spec.vm_id) == decision.server_id
        cluster.terminate_vm(spec.vm_id)
        with pytest.raises(PlacementError):
            cluster.locate(spec.vm_id)

    def test_admission_rejection_when_full(self):
        cluster = make_uniform_cluster(1, capacity())
        cluster.request_vm(on_demand_spec(ResourceVector(48, 100 * 1024, 100, 100)))
        with pytest.raises(AdmissionRejected):
            cluster.request_vm(on_demand_spec(ResourceVector(48, 100 * 1024, 100, 100)))
        assert cluster.stats().rejections == 1

    def test_placement_with_deflation_when_needed(self):
        cluster = make_uniform_cluster(1, capacity(), policy=ProportionalPolicy())
        cluster.request_vm(vm(cpu=40, mem_gb=100))
        decision = cluster.request_vm(on_demand_spec(ResourceVector(40, 20 * 1024, 100, 100)))
        assert decision.server_id == "server-0"
        cluster.verify_invariants()

    def test_overcommitment_stat(self):
        cluster = make_uniform_cluster(1, capacity())
        cluster.request_vm(vm(cpu=48, mem_gb=64))
        cluster.request_vm(vm(cpu=24, mem_gb=32))
        assert cluster.stats().overcommitment == pytest.approx(0.5)

    def test_step2_rejection_falls_through(self):
        """A top-ranked server that fails its local check must not kill the
        placement: the next candidate gets a chance."""
        # Server A looks attractive (big capacity, empty) but hosts a
        # non-deflatable VM soon, so we engineer A to be locally infeasible.
        a = Server("a", ResourceVector(48, 128 * 1024, 2000, 10_000))
        b = Server("b", ResourceVector(48, 128 * 1024, 2000, 10_000))
        a.launch(on_demand_spec(ResourceVector(40, 120 * 1024, 100, 100)))
        cluster = ClusterManager([a, b])
        decision = cluster.request_vm(on_demand_spec(ResourceVector(20, 64 * 1024, 100, 100)))
        assert decision.server_id == "b"


class TestPartitions:
    def test_partitioned_placement_respects_pools(self):
        cluster = make_uniform_cluster(
            4,
            capacity(),
            partitioned=True,
            partition_labels=["pool-0", "pool-1", "pool-2", "pool-3"],
        )
        # priority 0.2 -> pool-0 (server-0); priority 0.8 -> pool-3 (server-3).
        low = vm(priority=0.2)
        high = vm(priority=0.8)
        assert cluster.request_vm(low).server_id == "server-0"
        assert cluster.request_vm(high).server_id == "server-3"

    def test_full_partition_rejects_despite_other_capacity(self):
        """The paper's stated downside of partitioning (Section 5.2.1)."""
        cluster = make_uniform_cluster(
            2, capacity(), partitioned=True, partition_labels=["pool-0", "pool-3"]
        )
        filler = VMSpec(
            capacity=ResourceVector(48, 128 * 1024, 100, 100),
            priority=0.2,
            min_fraction=1.0,  # cannot be deflated at all
        )
        cluster.request_vm(filler)
        with pytest.raises(AdmissionRejected):
            cluster.request_vm(
                VMSpec(capacity=ResourceVector(8, 1024, 10, 10), priority=0.2,
                       min_fraction=1.0)
            )

    def test_on_demand_goes_to_on_demand_pool(self):
        cluster = make_uniform_cluster(
            2, capacity(), partitioned=True, partition_labels=["pool-0", "on-demand"]
        )
        decision = cluster.request_vm(on_demand_spec(ResourceVector(8, 1024, 10, 10)))
        assert decision.server_id == "server-1"


class TestConstruction:
    def test_duplicate_server_ids(self):
        s = Server("dup", capacity())
        t = Server("dup", capacity())
        with pytest.raises(PlacementError):
            ClusterManager([s, t])

    def test_empty_cluster(self):
        with pytest.raises(PlacementError):
            ClusterManager([])

    def test_make_uniform_validation(self):
        with pytest.raises(PlacementError):
            make_uniform_cluster(0, capacity())
