"""Tests for the Server wrapper (controller + optional hypervisor)."""

import pytest

from repro.cluster.server import Server
from repro.core.deflation import ProportionalPolicy
from repro.core.resources import ResourceVector
from repro.core.vm import VMSpec, on_demand_spec
from repro.errors import PlacementError


def capacity():
    return ResourceVector(cpu=48, memory_mb=128 * 1024, disk_mbps=2000, net_mbps=10_000)


def vm(cpu=16, mem_gb=32, priority=0.5):
    return VMSpec(
        capacity=ResourceVector(cpu, mem_gb * 1024, 100, 200), priority=priority
    )


class TestBasics:
    def test_launch_and_terminate(self):
        server = Server("s0", capacity(), ProportionalPolicy())
        spec = vm()
        alloc = server.launch(spec)
        assert server.hosts(spec.vm_id)
        assert alloc.current == spec.capacity
        server.terminate(spec.vm_id)
        assert not server.hosts(spec.vm_id)

    def test_snapshot_reflects_state(self):
        server = Server("s0", capacity(), partition="pool-1")
        server.launch(vm(cpu=16))
        snap = server.snapshot()
        assert snap.server_id == "s0"
        assert snap.partition == "pool-1"
        assert snap.used.cpu == 16
        assert snap.deflatable.cpu == 16  # min_fraction 0: all reclaimable

    def test_utilization(self):
        server = Server("s0", capacity())
        server.launch(vm(cpu=24))
        assert server.utilization() == pytest.approx(0.5)

    def test_can_accommodate_is_side_effect_free(self):
        server = Server("s0", capacity())
        before = server.snapshot().used
        assert server.can_accommodate(vm())
        assert server.snapshot().used == before


class TestHypervisorBinding:
    def test_launch_creates_domain(self):
        server = Server("s0", capacity(), with_hypervisor=True)
        spec = vm()
        server.launch(spec)
        assert spec.vm_id in server.hypervisor
        domain = server.hypervisor.lookup(spec.vm_id)
        assert domain.effective_cpu() == spec.capacity.cpu

    def test_deflation_propagates_to_domain(self):
        server = Server("s0", capacity(), ProportionalPolicy(), with_hypervisor=True)
        a = vm(cpu=32, mem_gb=64)
        server.launch(a)
        server.launch(on_demand_spec(ResourceVector(32, 64 * 1024, 100, 100)))
        # The deflatable VM was squeezed to 16 cores; the domain followed.
        domain = server.hypervisor.lookup(a.vm_id)
        assert domain.effective_cpu() == pytest.approx(16.0)

    def test_terminate_destroys_domain(self):
        server = Server("s0", capacity(), with_hypervisor=True)
        spec = vm()
        server.launch(spec)
        server.terminate(spec.vm_id)
        assert spec.vm_id not in server.hypervisor

    def test_reinflation_propagates(self):
        server = Server("s0", capacity(), ProportionalPolicy(), with_hypervisor=True)
        a = vm(cpu=32, mem_gb=64)
        od = on_demand_spec(ResourceVector(32, 64 * 1024, 100, 100))
        server.launch(a)
        server.launch(od)
        server.terminate(od.vm_id)
        domain = server.hypervisor.lookup(a.vm_id)
        assert domain.effective_cpu() == pytest.approx(32.0)


class TestErrors:
    def test_launch_infeasible(self):
        server = Server("s0", capacity())
        server.launch(on_demand_spec(ResourceVector(48, 128 * 1024, 100, 100)))
        with pytest.raises(PlacementError):
            server.launch(on_demand_spec(ResourceVector(8, 1024, 10, 10)))

    def test_terminate_unknown(self):
        with pytest.raises(PlacementError):
            Server("s0", capacity()).terminate("ghost")
