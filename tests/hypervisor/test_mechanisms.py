"""Tests for transparent, explicit and hybrid deflation mechanisms."""

import pytest

from repro.core.resources import ResourceVector
from repro.errors import DomainStateError, HotplugError
from repro.hypervisor.cgroups import CGroupManager
from repro.hypervisor.domain import Domain, DomainConfig, DomainState
from repro.hypervisor.guest import MEMORY_BLOCK_MB, GuestMemoryProfile
from repro.hypervisor.hotplug import ExplicitMechanism
from repro.hypervisor.hybrid import HybridMechanism
from repro.hypervisor.multiplex import TransparentMechanism


def make_domain(vcpus=8, mem_mb=16 * 1024, rss=8 * 1024, cache=4 * 1024):
    mgr = CGroupManager(ncpus_host=48)
    config = DomainConfig(name="vm", max_vcpus=vcpus, max_memory_mb=mem_mb)
    domain = Domain(
        config=config,
        cgroup=mgr.create("vm"),
        memory_profile=GuestMemoryProfile(
            rss_mb=rss, working_set_mb=rss / 2, page_cache_mb=cache
        ),
    )
    domain.start()
    return domain


class TestDomainLifecycle:
    def test_start_creates_guest(self):
        d = make_domain()
        assert d.state is DomainState.RUNNING
        assert d.guest is not None

    def test_double_start_rejected(self):
        d = make_domain()
        with pytest.raises(DomainStateError):
            d.start()

    def test_destroy(self):
        d = make_domain()
        d.destroy()
        assert d.state is DomainState.SHUTOFF
        with pytest.raises(DomainStateError):
            d.effective_cpu()

    def test_config_from_capacity_rounds_vcpus_up(self):
        cfg = DomainConfig.from_capacity("x", ResourceVector(3.2, 8192, 100, 100))
        assert cfg.max_vcpus == 4


class TestTransparent:
    def test_guest_view_unchanged(self):
        d = make_domain()
        TransparentMechanism(d).apply(ResourceVector(2, 4 * 1024, 100, 100))
        # The guest still believes it has everything (Section 4.2).
        assert d.guest.online_vcpus == 8
        assert d.guest.plugged_memory_mb == 16 * 1024
        # But effective resources are capped.
        assert d.effective_cpu() == pytest.approx(2.0)
        assert d.effective_memory_mb() == pytest.approx(4 * 1024)

    def test_fractional_cpu(self):
        d = make_domain()
        TransparentMechanism(d).set_cpu_limit(1.5)
        assert d.effective_cpu() == pytest.approx(1.5)

    def test_swap_when_limit_below_touched(self):
        d = make_domain(rss=8 * 1024, cache=4 * 1024)  # touched = 12 GB
        TransparentMechanism(d).set_memory_limit(9 * 1024)
        assert d.swapped_memory_mb() == pytest.approx(3 * 1024)

    def test_release_restores_full(self):
        d = make_domain()
        mech = TransparentMechanism(d)
        mech.apply(ResourceVector(1, 1024, 10, 10))
        mech.release()
        assert d.effective_cpu() == 8
        assert d.effective_memory_mb() == 16 * 1024

    def test_targets_clamped_to_config(self):
        d = make_domain(vcpus=4)
        eff = TransparentMechanism(d).apply(ResourceVector(100, 10**6, 10**6, 10**6))
        assert eff.cpu == 4


class TestExplicit:
    def test_vcpu_unplug_integral_only(self):
        d = make_domain()
        with pytest.raises(HotplugError):
            ExplicitMechanism(d).set_online_vcpus(2.5)

    def test_vcpu_unplug_and_replug(self):
        d = make_domain(vcpus=8)
        mech = ExplicitMechanism(d)
        out = mech.set_online_vcpus(3)
        assert out.achieved == 5 and out.complete
        assert d.guest.online_vcpus == 3
        out2 = mech.set_online_vcpus(8)
        assert out2.achieved == 5
        assert d.guest.online_vcpus == 8

    def test_memory_partial_when_floor_hit(self):
        d = make_domain(mem_mb=16 * 1024, rss=12 * 1024)
        out = ExplicitMechanism(d).set_memory_mb(8 * 1024)
        assert not out.complete
        assert out.achieved == pytest.approx(4 * 1024)  # stopped at 12 GB RSS
        assert out.shortfall == pytest.approx(4 * 1024)

    def test_cannot_remove_all_vcpus(self):
        d = make_domain()
        with pytest.raises(HotplugError):
            ExplicitMechanism(d).set_online_vcpus(0)

    def test_round_up_helpers(self):
        d = make_domain()
        mech = ExplicitMechanism(d)
        assert mech.round_up_vcpus(3.2) == 4
        assert mech.round_up_vcpus(0.1) == 1
        assert mech.round_up_memory_mb(1000) == MEMORY_BLOCK_MB * 8  # 1024


class TestHybrid:
    def test_fig13_cpu_composition(self):
        """Hotplug to ceil(target), multiplex to the fraction."""
        d = make_domain(vcpus=8)
        HybridMechanism(d).deflate_cpu(3.5)
        assert d.guest.online_vcpus == 4  # round_up(3.5)
        assert d.effective_cpu() == pytest.approx(3.5)  # quota does the rest

    def test_fig13_memory_composition(self):
        d = make_domain(mem_mb=16 * 1024, rss=8 * 1024)
        HybridMechanism(d).deflate_memory(10 * 1024)
        # Unplug could go to 10 GB (above RSS floor); cgroup exact.
        assert d.guest.plugged_memory_mb == pytest.approx(10 * 1024)
        assert d.effective_memory_mb() == pytest.approx(10 * 1024)

    def test_multiplexing_takes_up_hotplug_slack(self):
        """When the guest refuses part of the unplug, the transparent layer
        still lands the VM on target (Section 4.4)."""
        d = make_domain(mem_mb=16 * 1024, rss=12 * 1024)
        HybridMechanism(d).deflate_memory(8 * 1024)
        assert d.guest.plugged_memory_mb == pytest.approx(12 * 1024)  # floor
        assert d.effective_memory_mb() == pytest.approx(8 * 1024)  # exact target

    def test_hybrid_swaps_less_than_transparent(self):
        target = ResourceVector(4, 9 * 1024, 100, 100)
        d_trans = make_domain(rss=8 * 1024, cache=4 * 1024)
        TransparentMechanism(d_trans).apply(target)
        d_hyb = make_domain(rss=8 * 1024, cache=4 * 1024)
        HybridMechanism(d_hyb).apply(target)
        assert d_hyb.swapped_memory_mb() < d_trans.swapped_memory_mb()

    def test_reinflate_restores_both_layers(self):
        d = make_domain()
        mech = HybridMechanism(d)
        mech.apply(ResourceVector(2, 8 * 1024, 50, 50))
        mech.reinflate()
        assert d.guest.online_vcpus == 8
        assert d.guest.plugged_memory_mb == 16 * 1024
        assert d.effective_resources().cpu == 8

    def test_report_contains_outcomes(self):
        d = make_domain()
        report = HybridMechanism(d).apply(ResourceVector(3, 12 * 1024, 100, 100))
        assert report.cpu_hotplug.achieved == 5
        assert report.effective.cpu == pytest.approx(3.0)
