"""Tests for the guest-OS hotplug model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import HotplugError, ResourceError
from repro.hypervisor.guest import (
    MEMORY_BLOCK_MB,
    MIN_ONLINE_VCPUS,
    GuestMemoryProfile,
    GuestOS,
)


def guest(vcpus=8, mem_mb=16 * 1024, rss=8 * 1024, ws=4 * 1024, cache=4 * 1024):
    return GuestOS(
        total_vcpus=vcpus,
        total_memory_mb=mem_mb,
        memory_profile=GuestMemoryProfile(rss_mb=rss, working_set_mb=ws, page_cache_mb=cache),
    )


class TestProfileValidation:
    def test_working_set_cannot_exceed_rss(self):
        with pytest.raises(ResourceError):
            GuestMemoryProfile(rss_mb=100, working_set_mb=200, page_cache_mb=0)

    def test_negative_component(self):
        with pytest.raises(ResourceError):
            GuestMemoryProfile(rss_mb=-1, working_set_mb=0, page_cache_mb=0)


class TestCpuHotplug:
    def test_offline_partial(self):
        g = guest(vcpus=4)
        assert g.offline_vcpus(2) == 2
        assert g.online_vcpus == 2

    def test_never_below_minimum(self):
        g = guest(vcpus=4)
        assert g.offline_vcpus(10) == 4 - MIN_ONLINE_VCPUS
        assert g.online_vcpus == MIN_ONLINE_VCPUS

    def test_online_bounded_by_total(self):
        g = guest(vcpus=4)
        g.offline_vcpus(3)
        assert g.online_vcpus_add(10) == 3
        assert g.online_vcpus == 4

    def test_negative_rejected(self):
        with pytest.raises(HotplugError):
            guest().offline_vcpus(-1)
        with pytest.raises(HotplugError):
            guest().online_vcpus_add(-1)


class TestMemoryHotplug:
    def test_threshold_is_block_aligned_rss(self):
        g = guest(rss=8 * 1024)
        assert g.memory_unplug_threshold_mb() == 8 * 1024  # already aligned
        g2 = guest(rss=8 * 1024 + 1)
        assert g2.memory_unplug_threshold_mb() == 8 * 1024 + MEMORY_BLOCK_MB

    def test_unplug_block_granular(self):
        g = guest()
        got = g.unplug_memory(MEMORY_BLOCK_MB + 10)
        assert got == MEMORY_BLOCK_MB

    def test_unplug_stops_at_rss_floor(self):
        g = guest(mem_mb=16 * 1024, rss=8 * 1024)
        got = g.unplug_memory(12 * 1024)
        assert got == 8 * 1024  # only down to the RSS
        assert g.plugged_memory_mb == 8 * 1024

    def test_unplug_shrinks_page_cache(self):
        g = guest(mem_mb=16 * 1024, rss=8 * 1024, cache=4 * 1024)
        g.unplug_memory(8 * 1024)
        # plugged = 8 GB = rss; no room for cache.
        assert g.memory.page_cache_mb == 0

    def test_plug_back_bounded(self):
        g = guest()
        g.unplug_memory(4 * 1024)
        got = g.plug_memory(100 * 1024)
        assert g.plugged_memory_mb == g.total_memory_mb
        assert got == 4 * 1024

    def test_negative_rejected(self):
        with pytest.raises(HotplugError):
            guest().unplug_memory(-5)
        with pytest.raises(HotplugError):
            guest().plug_memory(-5)

    def test_touched_memory_accounts_cache_survival(self):
        g = guest(mem_mb=16 * 1024, rss=8 * 1024, cache=4 * 1024)
        assert g.touched_memory_mb() == 12 * 1024
        g.unplug_memory(6 * 1024)  # plugged -> 10 GB, cache -> 2 GB
        assert g.touched_memory_mb() == 10 * 1024


class TestConstruction:
    def test_too_small(self):
        with pytest.raises(ResourceError):
            GuestOS(total_vcpus=0, total_memory_mb=1024)
        with pytest.raises(ResourceError):
            GuestOS(total_vcpus=1, total_memory_mb=10)

    def test_default_profile(self):
        g = GuestOS(total_vcpus=2, total_memory_mb=4096)
        assert g.memory.rss_mb == pytest.approx(2048)


@settings(max_examples=50, deadline=None)
@given(
    mem_gb=st.integers(min_value=1, max_value=64),
    rss_frac=st.floats(min_value=0.1, max_value=0.9),
    amounts=st.lists(st.floats(min_value=0, max_value=64 * 1024), min_size=1, max_size=8),
)
def test_unplug_plug_invariants(mem_gb, rss_frac, amounts):
    """Plugged memory stays block-aligned-deltas within [threshold, total]."""
    total = mem_gb * 1024.0
    rss = rss_frac * total
    g = GuestOS(
        total_vcpus=2,
        total_memory_mb=total,
        memory_profile=GuestMemoryProfile(rss_mb=rss, working_set_mb=rss / 2, page_cache_mb=0),
    )
    for i, amount in enumerate(amounts):
        if i % 2 == 0:
            g.unplug_memory(amount)
        else:
            g.plug_memory(amount)
        assert g.plugged_memory_mb <= g.total_memory_mb + 1e-9
        assert g.plugged_memory_mb >= min(
            g.memory_unplug_threshold_mb(), g.total_memory_mb
        ) - 1e-9
        # Deltas from total are whole blocks.
        delta = g.total_memory_mb - g.plugged_memory_mb
        assert abs(delta / MEMORY_BLOCK_MB - round(delta / MEMORY_BLOCK_MB)) < 1e-9
