"""Tests for the libvirt-style hypervisor facade."""

import pytest

from repro.core.resources import ResourceVector
from repro.errors import DomainStateError, ResourceError
from repro.hypervisor.libvirt_api import HypervisorConnection


def conn():
    return HypervisorConnection(ncpus=48, memory_mb=128 * 1024, hostname="h0")


def vm_cap(cpu=8, mem_gb=16):
    return ResourceVector(cpu=cpu, memory_mb=mem_gb * 1024, disk_mbps=500, net_mbps=1000)


class TestDomainLifecycle:
    def test_create_and_lookup(self):
        hv = conn()
        domain = hv.create_domain("web", vm_cap())
        assert hv.lookup("web") is domain
        assert "web" in hv
        assert hv.list_domains() == ["web"]

    def test_duplicate_rejected(self):
        hv = conn()
        hv.create_domain("web", vm_cap())
        with pytest.raises(DomainStateError):
            hv.create_domain("web", vm_cap())

    def test_destroy_removes_everything(self):
        hv = conn()
        hv.create_domain("web", vm_cap())
        hv.destroy_domain("web")
        assert "web" not in hv
        assert "web" not in hv.cgroups
        with pytest.raises(DomainStateError):
            hv.lookup("web")

    def test_invalid_host(self):
        with pytest.raises(ResourceError):
            HypervisorConnection(ncpus=0, memory_mb=1024)
        with pytest.raises(ResourceError):
            HypervisorConnection(ncpus=4, memory_mb=0)


class TestAllocation:
    def test_set_allocation_drives_hybrid(self):
        hv = conn()
        hv.create_domain("web", vm_cap(cpu=8))
        report = hv.set_allocation("web", ResourceVector(3.5, 8 * 1024, 250, 500))
        assert report.effective.cpu == pytest.approx(3.5)
        assert report.effective.memory_mb == pytest.approx(8 * 1024)

    def test_total_effective_allocation(self):
        hv = conn()
        hv.create_domain("a", vm_cap(cpu=8))
        hv.create_domain("b", vm_cap(cpu=8))
        hv.set_allocation("a", ResourceVector(4, 8 * 1024, 100, 100))
        total = hv.total_effective_allocation()
        assert total.cpu == pytest.approx(12)

    def test_physical_feasibility(self):
        hv = HypervisorConnection(ncpus=8, memory_mb=32 * 1024)
        hv.create_domain("a", vm_cap(cpu=8, mem_gb=16))
        assert hv.is_physically_feasible()
        hv.create_domain("b", vm_cap(cpu=8, mem_gb=16))
        assert not hv.is_physically_feasible()  # 16 vCPUs on 8 cores
        hv.set_allocation("a", ResourceVector(4, 8 * 1024, 100, 100))
        hv.set_allocation("b", ResourceVector(4, 8 * 1024, 100, 100))
        assert hv.is_physically_feasible()

    def test_mechanism_for_unknown_domain(self):
        with pytest.raises(DomainStateError):
            conn().mechanism("ghost")
