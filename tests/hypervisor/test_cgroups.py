"""Tests for the simulated cgroup controllers."""

import pytest

from repro.errors import ResourceError
from repro.hypervisor.cgroups import (
    CFS_PERIOD_US,
    CGroupManager,
    CpuController,
    MemoryController,
)


class TestCpuController:
    def test_unlimited_by_default(self):
        cpu = CpuController(ncpus_host=48)
        assert cpu.quota_us == -1
        assert cpu.limit_cores() == 48

    def test_quota_encodes_cores(self):
        cpu = CpuController(ncpus_host=48)
        cpu.set_limit_cores(3.5)
        assert cpu.quota_us == int(3.5 * CFS_PERIOD_US)
        assert cpu.limit_cores() == pytest.approx(3.5)

    def test_limit_at_or_above_host_is_unlimited(self):
        cpu = CpuController(ncpus_host=8)
        cpu.set_limit_cores(8)
        assert cpu.quota_us == -1

    def test_negative_limit_rejected(self):
        with pytest.raises(ResourceError):
            CpuController(ncpus_host=8).set_limit_cores(-1)

    def test_kernel_min_shares(self):
        with pytest.raises(ResourceError):
            CpuController(ncpus_host=8).set_shares(1)


class TestMemoryController:
    def test_charge_under_limit(self):
        mem = MemoryController()
        mem.set_limit_mb(1000)
        assert mem.charge(800) == 0.0
        assert mem.swapped_mb == 0.0

    def test_charge_over_limit_swaps(self):
        mem = MemoryController()
        mem.set_limit_mb(1000)
        assert mem.charge(1400) == pytest.approx(400)
        assert mem.swapped_mb == pytest.approx(400)

    def test_invalid_limit(self):
        with pytest.raises(ResourceError):
            MemoryController().set_limit_mb(0)

    def test_negative_usage_rejected(self):
        with pytest.raises(ResourceError):
            MemoryController().charge(-1)


class TestBlkioAndNet:
    def test_blkio_effective_is_min(self):
        from repro.hypervisor.cgroups import BlkioController

        blk = BlkioController()
        blk.set_throttle(read_mbps=100, write_mbps=50)
        assert blk.effective_mbps() == 50

    def test_net_rate_validation(self):
        from repro.hypervisor.cgroups import NetController

        with pytest.raises(ResourceError):
            NetController().set_rate(0)


class TestManager:
    def test_create_get_destroy(self):
        mgr = CGroupManager(ncpus_host=16)
        group = mgr.create("vm-1")
        assert mgr.get("vm-1") is group
        assert "vm-1" in mgr and len(mgr) == 1
        mgr.destroy("vm-1")
        assert "vm-1" not in mgr

    def test_duplicate_rejected(self):
        mgr = CGroupManager(ncpus_host=16)
        mgr.create("vm-1")
        with pytest.raises(ResourceError):
            mgr.create("vm-1")

    def test_missing_group(self):
        mgr = CGroupManager(ncpus_host=16)
        with pytest.raises(ResourceError):
            mgr.get("ghost")
        with pytest.raises(ResourceError):
            mgr.destroy("ghost")

    def test_zero_cpu_host_rejected(self):
        with pytest.raises(ResourceError):
            CGroupManager(ncpus_host=0)
