"""Integration tests spanning manager -> server -> hypervisor -> LB.

These exercise the full Figure 1 stack: the centralized cluster manager
places VMs, per-server controllers deflate/reinflate them through the
simulated hypervisor, and deflation notifications reach a load balancer.
"""

import pytest

from repro.cluster.manager import make_uniform_cluster
from repro.core.deflation import PriorityPolicy, ProportionalPolicy
from repro.core.resources import ResourceVector
from repro.core.vm import VMSpec, on_demand_spec
from repro.errors import AdmissionRejected
from repro.loadbalancer.haproxy import DeflationAwareBalancer


def capacity():
    return ResourceVector(cpu=48, memory_mb=128 * 1024, disk_mbps=2000, net_mbps=10_000)


def web_vm(cpu=16, priority=0.5):
    return VMSpec(
        capacity=ResourceVector(cpu, cpu * 2 * 1024, 200, 500), priority=priority
    )


class TestFullStack:
    def test_lifecycle_with_hypervisor(self):
        cluster = make_uniform_cluster(
            2, capacity(), policy=ProportionalPolicy(), with_hypervisor=True
        )
        specs = [web_vm() for _ in range(4)]
        for spec in specs:
            cluster.request_vm(spec)
        # Every placed VM is backed by a running domain at full allocation.
        for spec in specs:
            server = cluster.servers[cluster.locate(spec.vm_id)]
            domain = server.hypervisor.lookup(spec.vm_id)
            assert domain.effective_cpu() == spec.capacity.cpu
        for spec in specs:
            cluster.terminate_vm(spec.vm_id)
        assert cluster.stats().n_vms == 0

    def test_pressure_deflates_domains_then_reinflates(self):
        cluster = make_uniform_cluster(
            1, capacity(), policy=ProportionalPolicy(), with_hypervisor=True
        )
        deflatable = web_vm(cpu=32)
        cluster.request_vm(deflatable)
        od = on_demand_spec(ResourceVector(32, 64 * 1024, 100, 100))
        cluster.request_vm(od)

        server = cluster.servers["server-0"]
        domain = server.hypervisor.lookup(deflatable.vm_id)
        assert domain.effective_cpu() == pytest.approx(16.0)
        assert server.hypervisor.is_physically_feasible()

        cluster.terminate_vm(od.vm_id)
        assert domain.effective_cpu() == pytest.approx(32.0)

    def test_notifications_reach_load_balancer(self):
        """Figure 1's channel: hypervisor -> app manager/load balancer."""
        cluster = make_uniform_cluster(1, capacity(), policy=ProportionalPolicy())
        server = cluster.servers["server-0"]

        replicas = [web_vm(cpu=20), web_vm(cpu=20)]
        lb = DeflationAwareBalancer({"r0": 20.0, "r1": 20.0})
        server.controller.subscribe(lb.on_deflation)

        for spec, backend in zip(replicas, ("r0", "r1")):
            cluster.request_vm(spec)
            lb.map_vm(spec.vm_id, backend)

        od = on_demand_spec(ResourceVector(20, 40 * 1024, 100, 100))
        cluster.request_vm(od)
        # Both replicas deflated 20 -> 14 cores; LB weights follow.
        assert lb.weights["r0"] == pytest.approx(14.0)
        assert lb.weights["r1"] == pytest.approx(14.0)

        cluster.terminate_vm(od.vm_id)
        assert lb.weights["r0"] == pytest.approx(20.0)

    def test_priority_policy_cluster_differentiates(self):
        cluster = make_uniform_cluster(
            1, capacity(), policy=PriorityPolicy(), with_hypervisor=True
        )
        low = web_vm(cpu=20, priority=0.2)
        high = web_vm(cpu=20, priority=0.8)
        cluster.request_vm(low)
        cluster.request_vm(high)
        cluster.request_vm(on_demand_spec(ResourceVector(16, 32 * 1024, 100, 100)))
        server = cluster.servers["server-0"]
        low_alloc = server.controller.allocation_of(low.vm_id)
        high_alloc = server.controller.allocation_of(high.vm_id)
        assert low_alloc.cpu < high_alloc.cpu
        cluster.verify_invariants()

    def test_cluster_rejects_what_it_cannot_hold(self):
        cluster = make_uniform_cluster(2, capacity(), policy=ProportionalPolicy())
        # Fill both servers with undeflatable load.
        for _ in range(2):
            cluster.request_vm(on_demand_spec(ResourceVector(48, 120 * 1024, 100, 100)))
        with pytest.raises(AdmissionRejected):
            cluster.request_vm(on_demand_spec(ResourceVector(24, 48 * 1024, 100, 100)))
        # Deflatable VMs still fit (they can start deflated).
        decision = cluster.request_vm(web_vm(cpu=24))
        assert decision is not None
        cluster.verify_invariants()
