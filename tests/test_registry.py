"""Round-trip tests for the unified component registry.

Every registered component must be constructible by name; unknown names
must raise an error listing the valid choices; and the legacy per-module
dictionaries must stay live views over the registry.
"""

import pytest

from repro import registry
from repro.errors import RegistryError, ReproError, UnknownComponentError

# Importing these populates the registry kinds under test.
import repro.experiments.registry  # noqa: F401
import repro.scenario  # noqa: F401
import repro.simulator.components  # noqa: F401

#: Kinds the seed system registers, and one known member of each.
EXPECTED = {
    "policy": "proportional",
    "placement": "cosine-best-fit",
    "pricing": "static",
    "experiment": "fig20",
    "admission": "deflation-aware",
    "scorer": "cosine",
    "metrics": "event-counts",
    "workload": "azure",
    "engine": "cluster-sim",
}


class TestRoundTrip:
    def test_expected_kinds_present(self):
        assert set(EXPECTED) <= set(registry.kinds())

    @pytest.mark.parametrize("kind", sorted(EXPECTED))
    def test_expected_member_registered(self, kind):
        assert registry.is_registered(kind, EXPECTED[kind])

    @pytest.mark.parametrize(
        "kind", ["policy", "placement", "pricing", "admission", "scorer", "metrics", "engine"]
    )
    def test_every_component_constructible_by_name(self, kind):
        for name in registry.names(kind):
            fresh = registry.create(kind, name)
            shared = registry.resolve(kind, name)
            assert fresh is not None and shared is not None
            # Components carry their registered identity where they define one.
            if getattr(fresh, "name", None) not in (None, "abstract"):
                assert isinstance(fresh.name, str)

    def test_resolve_returns_stable_singleton(self):
        assert registry.resolve("policy", "proportional") is registry.resolve(
            "policy", "proportional"
        )

    def test_create_returns_fresh_instances(self):
        a = registry.create("metrics", "event-counts")
        b = registry.create("metrics", "event-counts")
        assert a is not b

    def test_factory_defaults_bound_at_registration(self):
        eq4 = registry.create("policy", "priority")
        eq3 = registry.create("policy", "priority-eq3")
        assert eq4.priority_floor is True
        assert eq3.priority_floor is False


class TestUnknownNames:
    def test_error_lists_valid_choices(self):
        with pytest.raises(UnknownComponentError) as exc:
            registry.resolve("policy", "nope")
        message = str(exc.value)
        assert "nope" in message
        for valid in ("proportional", "priority", "deterministic"):
            assert valid in message

    def test_unknown_kind_lists_kinds(self):
        with pytest.raises(UnknownComponentError) as exc:
            registry.resolve("flavor", "vanilla")
        assert "policy" in str(exc.value)

    def test_errors_are_repro_errors(self):
        assert issubclass(UnknownComponentError, RegistryError)
        assert issubclass(RegistryError, ReproError)

    def test_validate_passes_through_known_names(self):
        assert registry.validate("scorer", "cosine") == "cosine"
        with pytest.raises(UnknownComponentError):
            registry.validate("scorer", "psychic")


class TestRegistrationRules:
    def test_duplicate_registration_rejected(self):
        with pytest.raises(RegistryError, match="already registered"):
            registry.register("policy", "proportional")(object)

    def test_replace_allows_override_and_unregister_restores(self):
        original = registry.resolve("scorer", "cosine")

        @registry.register("scorer", "test-only-scorer")
        class TestOnlyScorer:
            name = "test-only-scorer"

        try:
            assert registry.is_registered("scorer", "test-only-scorer")
            assert isinstance(registry.create("scorer", "test-only-scorer"), TestOnlyScorer)
        finally:
            registry.unregister("scorer", "test-only-scorer")
        assert not registry.is_registered("scorer", "test-only-scorer")
        assert registry.resolve("scorer", "cosine") is original

    def test_value_entries_reject_construction_kwargs(self):
        with pytest.raises(RegistryError, match="value"):
            registry.create("experiment", "fig20", scale="small")

    def test_view_is_live(self):
        view = registry.RegistryView("scorer")
        before = set(view)
        registry.register_instance("scorer", "test-live-view", object())
        try:
            assert set(view) == before | {"test-live-view"}
            assert "test-live-view" in view
        finally:
            registry.unregister("scorer", "test-live-view")
        assert set(view) == before
