"""Partitioned-mode coverage: pool assignment, routing, and exhaustion.

Section 5.2.1: partitioning the cluster into per-priority pools isolates
interference but turns pool exhaustion into admission-control rejections —
previously untested edge paths of the simulator.
"""

import numpy as np
import pytest

from repro.core.vm import VMClass
from repro.simulator.cluster_sim import ClusterSimConfig, ClusterSimulator
from repro.traces.azure import AzureTraceConfig, synthesize_azure_trace
from repro.traces.schema import VMTraceRecord, VMTraceSet


def flat_record(vm_id, util, cores, start, length, cls=VMClass.INTERACTIVE, mem=1024):
    return VMTraceRecord(
        vm_id=vm_id,
        vm_class=cls,
        cores=cores,
        memory_mb=mem,
        start_interval=start,
        cpu_util=np.full(length, util),
    )


# Utilization levels mapping to the four priority levels via priority_from_p95:
# 0.1 -> 0.2, 0.5 -> 0.4, 0.7 -> 0.6, 0.9 -> 0.8.
LOW_UTIL, HIGH_UTIL = 0.1, 0.9


def two_level_traces(n_low=3, n_high=3, n_od=2, cores=8):
    records = []
    for i in range(n_low):
        records.append(flat_record(f"low-{i}", LOW_UTIL, cores, start=0, length=10))
    for i in range(n_high):
        records.append(flat_record(f"high-{i}", HIGH_UTIL, cores, start=0, length=10))
    for i in range(n_od):
        records.append(
            flat_record(f"od-{i}", 0.8, cores, start=0, length=10, cls=VMClass.DELAY_INSENSITIVE)
        )
    return VMTraceSet(records)


class TestPartitionAssignment:
    def test_pool_counts_cover_every_server_exactly_once(self):
        traces = two_level_traces()
        cfg = ClusterSimConfig(n_servers=8, partitioned=True)
        sim = ClusterSimulator(traces, cfg)
        # 2 deflatable levels + 1 on-demand pool, all servers assigned.
        assert sim.server_pool.shape == (8,)
        assert np.all(sim.server_pool >= 0)
        assert set(sim.server_pool.tolist()) == {0, 1, 2}
        assert sim._on_demand_pool == 2
        assert set(sim._pool_of_level) == {0.2, 0.8}

    def test_pool_sizes_follow_demand_shares(self):
        # 6 low-priority VMs vs 1 high-priority VM: the low pool gets more
        # servers (shares are committed-capacity weighted).
        traces = two_level_traces(n_low=6, n_high=1, n_od=1)
        sim = ClusterSimulator(traces, ClusterSimConfig(n_servers=8, partitioned=True))
        low_pool = sim._pool_of_level[0.2]
        high_pool = sim._pool_of_level[0.8]
        assert (sim.server_pool == low_pool).sum() > (sim.server_pool == high_pool).sum()

    def test_fewer_servers_than_pools_leaves_pools_empty(self):
        traces = two_level_traces()
        sim = ClusterSimulator(traces, ClusterSimConfig(n_servers=1, partitioned=True))
        # 3 pools, 1 server: at least one pool has no servers at all.
        assigned = set(sim.server_pool.tolist())
        assert len(assigned) == 1
        result = sim.run()
        # Every VM outside the surviving pool was rejected outright.
        assert result.n_rejected_deflatable + result.n_rejected_on_demand > 0


class TestPoolRouting:
    def test_vms_land_only_in_their_pool(self):
        traces = two_level_traces()
        cfg = ClusterSimConfig(n_servers=9, partitioned=True)
        sim = ClusterSimulator(traces, cfg)
        sim.run()
        for i, rec in enumerate(traces):
            out = sim.outcomes[i]
            if not out.placed:
                continue
            server = int(sim.vm_server[i])
            pool = int(sim.server_pool[server])
            if rec.vm_class == VMClass.INTERACTIVE:
                expected = sim._pool_of_level[round(float(sim.vm_prio[i]), 6)]
            else:
                expected = sim._on_demand_pool
            assert pool == expected, f"{rec.vm_id} landed in pool {pool}"

    def test_unpartitioned_candidates_are_all_servers(self):
        traces = two_level_traces()
        sim = ClusterSimulator(traces, ClusterSimConfig(n_servers=5))
        np.testing.assert_array_equal(sim._candidate_servers(0), np.arange(5))

    def test_partitioned_preemption_baseline_routes_too(self):
        traces = two_level_traces()
        cfg = ClusterSimConfig(n_servers=9, policy="preemption", partitioned=True)
        sim = ClusterSimulator(traces, cfg)
        result = sim.run()
        assert result.n_placed > 0
        for i in range(len(traces)):
            if sim.outcomes[i].placed and sim.vm_deflatable[i]:
                pool = int(sim.server_pool[int(sim.vm_server[i])])
                assert pool == sim._pool_of_level[round(float(sim.vm_prio[i]), 6)]


class TestPoolExhaustion:
    def test_full_pool_rejects_rather_than_spilling(self):
        # One 8-core VM per level fills each 8-core pool server; the second
        # low-priority VM must be rejected even though the high pool and the
        # on-demand pool still have room elsewhere in the cluster.
        traces = VMTraceSet(
            [
                flat_record("low-0", LOW_UTIL, 8, start=0, length=10),
                flat_record("low-1", LOW_UTIL, 8, start=1, length=10),
                flat_record("high-0", HIGH_UTIL, 8, start=0, length=10),
                flat_record("od-0", 0.8, 8, start=0, length=10, cls=VMClass.DELAY_INSENSITIVE),
            ]
        )
        cfg = ClusterSimConfig(
            n_servers=3, cores_per_server=8, memory_per_server_mb=2048,
            partitioned=True, min_fraction=0.9,
        )
        sim = ClusterSimulator(traces, cfg)
        result = sim.run()
        outcomes = {traces[i].vm_id: sim.outcomes[i] for i in range(len(traces))}
        assert outcomes["low-0"].placed
        assert outcomes["low-1"].rejected, "pool exhaustion must reject, not spill"
        assert outcomes["high-0"].placed
        assert outcomes["od-0"].placed
        assert result.n_rejected_deflatable == 1

    def test_shared_pool_accepts_what_partitions_reject(self):
        traces = two_level_traces(n_low=5, n_high=1, n_od=1, cores=8)
        kwargs = dict(n_servers=3, cores_per_server=16, memory_per_server_mb=8192,
                      min_fraction=0.8)
        part = ClusterSimulator(traces, ClusterSimConfig(partitioned=True, **kwargs)).run()
        shared = ClusterSimulator(traces, ClusterSimConfig(**kwargs)).run()
        assert shared.n_placed >= part.n_placed
        assert part.n_rejected_deflatable >= shared.n_rejected_deflatable


class TestPartitionTrimRegression:
    """The trim loop must honor the one-server-per-pool minimum.

    ``counts[np.argmax(counts)] -= 1`` used to be able to drive pools to
    zero servers whenever rounding overshot and every pool was already at
    one server (many priority levels, few servers), silently disabling
    whole priority classes.  Now the trim only shrinks pools with spare
    servers; only when pools outnumber servers are pools dropped, smallest
    demand share first.
    """

    def four_level_traces(self, counts=(1, 1, 1, 1), n_od=1, cores=4):
        # Utils 0.1/0.5/0.7/0.9 -> the four priority levels 0.2/0.4/0.6/0.8.
        utils = (0.1, 0.5, 0.7, 0.9)
        records = []
        for lvl, (n, util) in enumerate(zip(counts, utils)):
            for i in range(n):
                records.append(flat_record(f"l{lvl}-{i}", util, cores, 0, 10))
        for i in range(n_od):
            records.append(
                flat_record(f"od-{i}", 0.8, cores, 0, 10, cls=VMClass.DELAY_INSENSITIVE)
            )
        return VMTraceSet(records)

    def test_every_pool_keeps_a_server_when_servers_suffice(self):
        # 5 pools (4 levels + on-demand), 6 servers, heavily skewed demand:
        # rounding inflates the big pool and the trim must not zero a
        # one-server pool to compensate.
        traces = self.four_level_traces(counts=(40, 1, 1, 1), n_od=1)
        sim = ClusterSimulator(traces, ClusterSimConfig(n_servers=6, partitioned=True))
        counts = np.bincount(sim.server_pool, minlength=5)
        assert counts.sum() == 6
        assert np.all(counts >= 1), f"pool starved: {counts.tolist()}"

    @pytest.mark.parametrize("n_servers", [5, 6, 7, 9, 13])
    def test_minimum_holds_across_sizes(self, n_servers):
        traces = self.four_level_traces(counts=(25, 9, 3, 1), n_od=2)
        sim = ClusterSimulator(
            traces, ClusterSimConfig(n_servers=n_servers, partitioned=True)
        )
        counts = np.bincount(sim.server_pool, minlength=5)
        assert counts.sum() == n_servers
        assert np.all(counts >= 1)

    def test_more_pools_than_servers_drops_smallest_shares(self):
        # 5 pools, 3 servers: the minimum is infeasible; the two smallest
        # demand pools are dropped, never driven negative.
        traces = self.four_level_traces(counts=(40, 20, 1, 1), n_od=10)
        sim = ClusterSimulator(traces, ClusterSimConfig(n_servers=3, partitioned=True))
        counts = np.bincount(sim.server_pool, minlength=5)
        assert counts.sum() == 3
        assert np.all(counts >= 0)
        surviving = set(np.nonzero(counts)[0].tolist())
        # Biggest shares: level-0 pool (0), level-1 pool (1), on-demand (4).
        assert surviving == {0, 1, 4}
        result = sim.run()
        assert result.n_placed > 0

    def test_single_server_still_runs(self):
        traces = self.four_level_traces()
        sim = ClusterSimulator(traces, ClusterSimConfig(n_servers=1, partitioned=True))
        assert (sim.server_pool >= 0).all()
        sim.run()


class TestPartitionedDeterminism:
    @pytest.mark.parametrize("policy", ["proportional", "priority", "deterministic"])
    def test_partitioned_runs_are_reproducible(self, policy):
        traces = synthesize_azure_trace(AzureTraceConfig(n_vms=150, seed=3))
        cfg = ClusterSimConfig(n_servers=10, policy=policy, partitioned=True)
        r1 = ClusterSimulator(traces, cfg).run()
        r2 = ClusterSimulator(traces, cfg).run()
        assert r1 == r2
