"""Regression pins for the batched same-timestamp departure path.

``ClusterSimulator._handle_end_batch`` processes one timestamp's departures
with a single rebalance per touched server.  Its equivalence argument has
one documented exception: a batch that detaches *every* deflatable resident
of a server never runs a final rebalance there (``_rebalance`` early-returns
on an empty deflatable set), so the ``reclaimed`` residue the sequential
loop leaves behind comes from an intermediate membership the batch never
visits — and that residue feeds the availability score of later placements.
The handler must fall back to strict per-event processing for such
timestamps; these tests pin both the surgical residue case and the 20k-VM
bench case where the divergence was first observed.
"""

import numpy as np
import pytest

from repro.core.vm import VMClass
from repro.simulator.cluster_sim import (
    ClusterSimConfig,
    ClusterSimulator,
    servers_for_overcommitment,
)
from repro.simulator.reference import ReferenceClusterSimulator
from repro.traces.azure import AzureTraceConfig, synthesize_azure_trace
from repro.traces.schema import VMTraceRecord, VMTraceSet


def _record(vm_id, cls, cores, start, length, util):
    return VMTraceRecord(
        vm_id=vm_id,
        vm_class=cls,
        cores=cores,
        memory_mb=1024,
        start_interval=start,
        cpu_util=np.full(length, util),
    )


def test_emptying_batch_matches_sequential_reclaimed_residue():
    """All deflatable residents of a server depart at one timestamp.

    Timeline on the single 10-core server: two 4-core interactive VMs are
    resident when a 6-core on-demand VM arrives at t=2, pushing committed
    cores to 14 and deflating both (the deterministic policy's all-or-
    nothing reclaim leaves ``reclaimed > 0``).  Both deflatable VMs end at
    t=10 — the same timestamp — so the batched path would detach both and
    then find the deflatable set empty, skipping the rebalance that the
    sequential loop ran while one VM still remained (which restored the
    survivor and zeroed ``reclaimed``).  The handler must replay such
    timestamps per-event: afterwards, optimized and reference bookkeeping
    agree exactly, including the scoring-visible ``reclaimed`` rows.
    """
    traces = VMTraceSet(
        records=[
            _record("d1", VMClass.INTERACTIVE, 4, start=0, length=10, util=0.05),
            _record("d2", VMClass.INTERACTIVE, 4, start=0, length=10, util=0.05),
            _record("od", VMClass.UNKNOWN, 6, start=2, length=20, util=0.9),
        ]
    )
    config = ClusterSimConfig(n_servers=1, cores_per_server=10.0, policy="deterministic")
    opt = ClusterSimulator(traces, config)
    ref = ReferenceClusterSimulator(traces, config)
    opt_result = opt.run()
    ref_result = ref.run()
    # The scenario must actually deflate, or the residue path was never hit.
    assert opt_result.mean_deflation > 0.0
    assert opt_result == ref_result
    # The residue itself: after the emptying departure the sequential loop
    # leaves reclaimed == 0 (the last non-empty rebalance restored the
    # survivor under zero pressure); a naive batch keeps the stale value.
    assert np.array_equal(opt.reclaimed, ref.reclaimed)
    assert float(opt.reclaimed.sum()) == 0.0


@pytest.mark.slow
def test_deterministic_scale_equivalence_20k():
    """The bench case where the stale-residue divergence first surfaced.

    ``deterministic @ oc 0.3`` on the seed-11 20k-VM trace: the emptied-
    server residue skewed availability scores enough to flip placements
    (first visible as a spurious deflation around t=452 on server 27).
    Small traces never hit the flip, so this exact configuration is pinned
    at full size in the slow tier.
    """
    traces = synthesize_azure_trace(AzureTraceConfig(n_vms=20000, seed=11))
    n_servers = servers_for_overcommitment(traces, 0.3)
    config = ClusterSimConfig(n_servers=n_servers, policy="deterministic")
    opt = ClusterSimulator(traces, config).run()
    ref = ReferenceClusterSimulator(traces, config).run()
    assert opt == ref
