"""Coverage for the preemption baseline's victim planner.

``_preemption_plan`` decides which deflatable residents an arriving
on-demand VM evicts: victims accumulate in ascending priority order until
the demand fits, the plan is empty when the VM already fits, and it is None
when even evicting every deflatable resident would not make room.
"""

import numpy as np

from repro.core.vm import VMClass
from repro.simulator.cluster_sim import ClusterSimConfig, ClusterSimulator
from repro.traces.schema import VMTraceRecord, VMTraceSet


def flat_record(vm_id, util, cores, start, length, cls=VMClass.INTERACTIVE, mem=1024):
    return VMTraceRecord(
        vm_id=vm_id,
        vm_class=cls,
        cores=cores,
        memory_mb=mem,
        start_interval=start,
        cpu_util=np.full(length, util),
    )


# Utilizations mapping to priorities via priority_from_p95:
# 0.1 -> 0.2, 0.5 -> 0.4, 0.7 -> 0.6, 0.9 -> 0.8.
UTIL_FOR_PRIO = {0.2: 0.1, 0.4: 0.5, 0.6: 0.7, 0.8: 0.9}


def sim_with_residents(prios_and_cores, cores_per_server=48, length=50):
    """One big server hosting deflatable residents of given (prio, cores)."""
    records = [
        flat_record(f"defl-{i}", UTIL_FOR_PRIO[p], c, start=0, length=length)
        for i, (p, c) in enumerate(prios_and_cores)
    ]
    traces = VMTraceSet(records)
    sim = ClusterSimulator(
        traces,
        ClusterSimConfig(
            n_servers=1, cores_per_server=cores_per_server, policy="preemption"
        ),
    )
    # Admit every resident directly (all fit at full allocation).
    for i in range(len(records)):
        sim._admit(0.0, i, 0)
    return sim


class TestPlanShape:
    def test_empty_plan_when_vm_already_fits(self):
        sim = sim_with_residents([(0.2, 8), (0.8, 8)], cores_per_server=48)
        demand = np.array([8.0, 64.0])
        assert sim._preemption_plan(0, demand) == []

    def test_victims_ascend_by_priority(self):
        # Residents deliberately admitted in non-priority order.
        sim = sim_with_residents(
            [(0.8, 8), (0.2, 8), (0.6, 8), (0.4, 8)], cores_per_server=34
        )
        # 2 free cores; a 20-core demand needs 18 more -> three victims.
        victims = sim._preemption_plan(0, np.array([20.0, 64.0]))
        prios = [round(float(sim.vm_prio[v]), 1) for v in victims]
        assert prios == sorted(prios), "victims must ascend by priority"
        assert prios == [0.2, 0.4, 0.6]

    def test_priority_ties_break_by_vm_index(self):
        sim = sim_with_residents([(0.2, 8), (0.2, 8), (0.2, 8)], cores_per_server=24)
        victims = sim._preemption_plan(0, np.array([10.0, 64.0]))
        assert victims == sorted(victims)

    def test_none_when_even_total_eviction_is_insufficient(self):
        sim = sim_with_residents([(0.2, 8), (0.4, 8)], cores_per_server=24)
        # 8 cores free + 16 deflatable: a 30-core demand can never fit.
        assert sim._preemption_plan(0, np.array([30.0, 64.0])) is None

    def test_memory_dimension_counts_too(self):
        sim = sim_with_residents([(0.2, 4)], cores_per_server=48)
        # Fits on CPU but needs more memory than the server has at all.
        huge_mem = np.array([4.0, 1e9])
        assert sim._preemption_plan(0, huge_mem) is None

    def test_plan_stops_at_first_sufficient_victim_set(self):
        sim = sim_with_residents(
            [(0.2, 16), (0.4, 8), (0.6, 8)], cores_per_server=32
        )
        # 0 free; demand 12 is covered by the first (16-core) victim alone.
        victims = sim._preemption_plan(0, np.array([12.0, 64.0]))
        assert len(victims) == 1
        assert round(float(sim.vm_prio[victims[0]]), 1) == 0.2


class TestLimitPruning:
    """_plan_victims(limit=...) powers the fewest-preemptions server scan."""

    def test_limit_prunes_plans_that_cannot_win(self):
        sim = sim_with_residents(
            [(0.2, 8), (0.4, 8), (0.6, 8)], cores_per_server=24
        )
        full = sim._plan_victims(0, 20.0, 64.0, None)
        assert len(full) == 3
        # A best-so-far of 3 means this server's equal-length plan loses.
        assert sim._plan_victims(0, 20.0, 64.0, 3) is None
        # A larger allowance keeps the plan intact.
        assert sim._plan_victims(0, 20.0, 64.0, 4) == full

    def test_limit_does_not_affect_shorter_plans(self):
        sim = sim_with_residents([(0.2, 16), (0.4, 8)], cores_per_server=24)
        assert sim._plan_victims(0, 10.0, 64.0, 2) == sim._plan_victims(0, 10.0, 64.0, None)


class TestEndToEndPreemption:
    def test_fewest_preemptions_server_wins(self):
        # Server layout: let the event loop place things, then verify the
        # arriving on-demand VM evicted the minimal set.
        traces = VMTraceSet(
            [
                flat_record("defl-big", 0.1, 24, start=0, length=30),
                flat_record("defl-a", 0.1, 12, start=0, length=30),
                flat_record("defl-b", 0.1, 12, start=0, length=30),
                flat_record(
                    "od", 0.8, 20, start=5, length=10, cls=VMClass.DELAY_INSENSITIVE
                ),
            ]
        )
        sim = ClusterSimulator(
            traces,
            ClusterSimConfig(n_servers=2, cores_per_server=24, policy="preemption"),
        )
        result = sim.run()
        assert result.n_preempted >= 1
        preempted = {
            traces[i].vm_id for i in range(len(traces)) if sim.outcomes[i].preempted
        }
        # Evicting the single 24-core VM frees a whole server; evicting both
        # 12-core VMs would too but needs two preemptions.
        assert preempted == {"defl-big"}
