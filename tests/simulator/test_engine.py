"""Tests for the discrete-event core."""

import pytest

from repro.errors import SimulationError
from repro.simulator.engine import EventQueue, Simulator


class TestEventQueue:
    def test_time_ordering(self):
        q = EventQueue()
        q.schedule(3.0, "c")
        q.schedule(1.0, "a")
        q.schedule(2.0, "b")
        assert [q.pop()[1] for _ in range(3)] == ["a", "b", "c"]

    def test_fifo_for_ties(self):
        q = EventQueue()
        for label in "abc":
            q.schedule(1.0, label)
        assert [q.pop()[1] for _ in range(3)] == ["a", "b", "c"]

    def test_clock_advances(self):
        q = EventQueue()
        q.schedule(5.0, None)
        q.pop()
        assert q.now == 5.0

    def test_past_scheduling_rejected(self):
        q = EventQueue()
        q.schedule(5.0, None)
        q.pop()
        with pytest.raises(SimulationError):
            q.schedule(1.0, None)

    def test_pop_empty(self):
        with pytest.raises(SimulationError):
            EventQueue().pop()

    def test_peek_and_len(self):
        q = EventQueue()
        assert q.peek_time() is None
        q.schedule(1.0, None)
        assert q.peek_time() == 1.0
        assert len(q) == 1 and bool(q)


class TestSimulator:
    def test_callbacks_run_in_order(self):
        sim = Simulator()
        seen = []
        sim.at(2.0, lambda: seen.append("late"))
        sim.at(1.0, lambda: seen.append("early"))
        sim.run()
        assert seen == ["early", "late"]

    def test_after_relative_delay(self):
        sim = Simulator()
        seen = []
        sim.at(1.0, lambda: sim.after(0.5, lambda: seen.append(sim.now)))
        sim.run()
        assert seen == [1.5]

    def test_run_until_horizon(self):
        sim = Simulator()
        seen = []
        sim.at(1.0, lambda: seen.append(1))
        sim.at(10.0, lambda: seen.append(10))
        sim.run(until=5.0)
        assert seen == [1]
        assert sim.now == 5.0

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.after(-1.0, lambda: None)
