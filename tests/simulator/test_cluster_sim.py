"""Tests for the trace-driven cluster simulator."""

import numpy as np
import pytest

from repro.core.vm import VMClass
from repro.errors import SimulationError
from repro.simulator.cluster_sim import (
    ClusterSimConfig,
    ClusterSimulator,
    servers_for_overcommitment,
)
from repro.traces.azure import AzureTraceConfig, synthesize_azure_trace
from repro.traces.schema import VMTraceRecord, VMTraceSet


def flat_record(vm_id, util, cores, start, length, cls=VMClass.INTERACTIVE, mem=8192):
    return VMTraceRecord(
        vm_id=vm_id,
        vm_class=cls,
        cores=cores,
        memory_mb=mem,
        start_interval=start,
        cpu_util=np.full(length, util),
    )


@pytest.fixture(scope="module")
def azure_trace():
    return synthesize_azure_trace(AzureTraceConfig(n_vms=300, seed=12))


class TestConfigValidation:
    def test_bad_server_count(self):
        with pytest.raises(SimulationError):
            ClusterSimConfig(n_servers=0)

    def test_bad_policy(self):
        with pytest.raises(Exception):
            ClusterSimConfig(n_servers=1, policy="nope")

    def test_bad_min_fraction(self):
        with pytest.raises(SimulationError):
            ClusterSimConfig(n_servers=1, min_fraction=1.5)

    def test_bad_component_names(self):
        with pytest.raises(Exception, match="available"):
            ClusterSimConfig(n_servers=1, admission="bouncer")
        with pytest.raises(Exception, match="available"):
            ClusterSimConfig(n_servers=1, scorer="psychic")
        with pytest.raises(Exception, match="available"):
            ClusterSimConfig(n_servers=1, collectors=("nope",))

    def test_preemption_rejects_custom_admission(self):
        # The baseline has its own fixed admission rule; configuring a
        # controller that would be silently ignored must fail loudly.
        with pytest.raises(SimulationError, match="preemption baseline"):
            ClusterSimConfig(n_servers=1, policy="preemption", admission="rigid")

    def test_empty_trace_rejected(self):
        with pytest.raises(SimulationError):
            ClusterSimulator(VMTraceSet([]), ClusterSimConfig(n_servers=1))


class TestSmallScenarios:
    def test_no_pressure_no_deflation(self):
        """Two small VMs on a big server: never deflated, no losses."""
        traces = VMTraceSet(
            [
                flat_record("a", 0.5, cores=4, start=0, length=10),
                flat_record("b", 0.5, cores=4, start=2, length=10),
            ]
        )
        result = ClusterSimulator(traces, ClusterSimConfig(n_servers=1)).run()
        assert result.throughput_loss == 0.0
        assert result.mean_deflation == 0.0
        assert result.failure_probability == 0.0
        assert result.n_placed == 2

    def test_pressure_causes_deflation_and_loss(self):
        """Two 32-core VMs at 100% usage on one 48-core server: both are
        deflated to 24 cores, each losing 25% of demanded work."""
        traces = VMTraceSet(
            [
                flat_record("a", 1.0, cores=32, start=0, length=10, mem=1024),
                flat_record("b", 1.0, cores=32, start=0, length=10, mem=1024),
            ]
        )
        cfg = ClusterSimConfig(n_servers=1, cores_per_server=48)
        result = ClusterSimulator(traces, cfg).run()
        assert result.mean_deflation == pytest.approx(0.25, abs=0.01)
        assert result.throughput_loss == pytest.approx(0.25, abs=0.01)
        assert result.overcommitment == pytest.approx(64 / 48 - 1, abs=0.01)

    def test_deflation_only_under_usage_costs_nothing(self):
        """Idle VMs deflate for free: usage below the deflated allocation."""
        traces = VMTraceSet(
            [
                flat_record("a", 0.1, cores=32, start=0, length=10, mem=1024),
                flat_record("b", 0.1, cores=32, start=0, length=10, mem=1024),
            ]
        )
        cfg = ClusterSimConfig(n_servers=1, cores_per_server=48)
        result = ClusterSimulator(traces, cfg).run()
        assert result.mean_deflation > 0.2
        assert result.throughput_loss == 0.0

    def test_departure_reinflates(self):
        """When the colocated VM leaves, allocation returns to 100%."""
        traces = VMTraceSet(
            [
                flat_record("a", 1.0, cores=32, start=0, length=20, mem=1024),
                flat_record("b", 1.0, cores=32, start=0, length=10, mem=1024),
            ]
        )
        cfg = ClusterSimConfig(n_servers=1, cores_per_server=48)
        sim = ClusterSimulator(traces, cfg)
        result = sim.run()
        # VM a: deflated (0.75) for 10 intervals, full for the next 10.
        out_a = sim.outcomes[0]
        series = sim._allocation_series(traces[0], out_a)
        assert series[:10].mean() == pytest.approx(0.75, abs=0.02)
        assert series[10:].mean() == pytest.approx(1.0, abs=1e-6)
        del result

    def test_on_demand_never_deflated(self):
        traces = VMTraceSet(
            [
                flat_record("od", 1.0, cores=32, start=0, length=10,
                            cls=VMClass.DELAY_INSENSITIVE, mem=1024),
                flat_record("defl", 1.0, cores=32, start=0, length=10, mem=1024),
            ]
        )
        cfg = ClusterSimConfig(n_servers=1, cores_per_server=48)
        sim = ClusterSimulator(traces, cfg)
        sim.run()
        # All 16 cores of pressure landed on the deflatable VM.
        out = {o.vm_index: o for o in sim.outcomes}
        series = sim._allocation_series(traces[1], out[1])
        assert series.mean() == pytest.approx(0.5, abs=0.01)

    def test_preemption_baseline_preempts_lowest_priority(self):
        # Low-usage (=> low priority) deflatable VM gets preempted when the
        # on-demand VM arrives into a full server.
        traces = VMTraceSet(
            [
                flat_record("defl", 0.1, cores=32, start=0, length=20, mem=1024),
                flat_record("od", 0.9, cores=32, start=5, length=10,
                            cls=VMClass.DELAY_INSENSITIVE, mem=1024),
            ]
        )
        cfg = ClusterSimConfig(n_servers=1, cores_per_server=48, policy="preemption")
        sim = ClusterSimulator(traces, cfg)
        result = sim.run()
        assert result.n_preempted == 1
        assert result.failure_probability == 1.0  # the only deflatable VM

    def test_rejection_when_no_room_even_deflated(self):
        traces = VMTraceSet(
            [
                flat_record("od1", 1.0, cores=40, start=0, length=10,
                            cls=VMClass.DELAY_INSENSITIVE, mem=1024),
                flat_record("od2", 1.0, cores=40, start=0, length=10,
                            cls=VMClass.DELAY_INSENSITIVE, mem=1024),
            ]
        )
        cfg = ClusterSimConfig(n_servers=1, cores_per_server=48)
        result = ClusterSimulator(traces, cfg).run()
        assert result.n_rejected_on_demand == 1


class TestRealTrace:
    def test_runs_clean_and_deterministic(self, azure_trace):
        cfg = ClusterSimConfig(n_servers=12)
        r1 = ClusterSimulator(azure_trace, cfg).run()
        r2 = ClusterSimulator(azure_trace, cfg).run()
        assert r1.throughput_loss == r2.throughput_loss
        assert r1.revenue == r2.revenue
        assert 0.0 <= r1.throughput_loss <= 1.0
        assert 0.0 <= r1.failure_probability <= 1.0

    def test_all_policies_run(self, azure_trace):
        for policy in ("proportional", "priority", "deterministic", "preemption"):
            cfg = ClusterSimConfig(n_servers=10, policy=policy)
            result = ClusterSimulator(azure_trace, cfg).run()
            assert result.n_placed > 0

    def test_partitioned_mode(self, azure_trace):
        cfg = ClusterSimConfig(n_servers=12, policy="priority", partitioned=True)
        result = ClusterSimulator(azure_trace, cfg).run()
        assert result.n_placed > 0

    def test_more_servers_less_loss(self, azure_trace):
        tight = ClusterSimulator(azure_trace, ClusterSimConfig(n_servers=6)).run()
        roomy = ClusterSimulator(azure_trace, ClusterSimConfig(n_servers=24)).run()
        assert roomy.throughput_loss <= tight.throughput_loss

    def test_revenue_models_present(self, azure_trace):
        result = ClusterSimulator(azure_trace, ClusterSimConfig(n_servers=12)).run()
        assert set(result.revenue) == {"static", "priority", "allocation"}
        # Priority pricing (mean pi ~0.2-0.8) beats the 0.2x static discount.
        assert result.revenue["priority"] > result.revenue["static"]
        # Allocation-based never exceeds static (same base rate, discounted
        # while deflated).
        assert result.revenue["allocation"] <= result.revenue["static"] + 1e-9


class TestServersForOvercommitment:
    def test_zero_overcommit_fits_peak(self):
        traces = VMTraceSet([flat_record("a", 0.5, cores=48, start=0, length=10, mem=1024)])
        assert servers_for_overcommitment(traces, 0.0) == 1

    def test_higher_overcommit_fewer_servers(self, azure_trace):
        n0 = servers_for_overcommitment(azure_trace, 0.0)
        n50 = servers_for_overcommitment(azure_trace, 0.5)
        assert n50 < n0

    def test_negative_rejected(self, azure_trace):
        with pytest.raises(SimulationError):
            servers_for_overcommitment(azure_trace, -0.1)
