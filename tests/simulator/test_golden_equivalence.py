"""Golden bit-equivalence of the optimized simulator vs. the pinned reference.

The fast-path rework of :class:`repro.simulator.cluster_sim.ClusterSimulator`
(incremental committed-cores scalar, cached candidate arrays, rebalance
fast path, array-backed allocation history, vectorized ``_collect``) is a
pure optimization: every observable of :class:`ClusterSimResult` — counts,
peak committed cores, throughput loss, mean deflation, and all revenue
dicts — must be **bit-identical** to the pre-optimization implementation
snapshotted in :mod:`repro.simulator.reference`.

The comparison runs a fixed 500-VM synthetic trace through all four
policies, flat and partitioned, at a cluster size tight enough to force
real deflation/preemption (so the non-trivial metric paths are exercised),
plus a roomy cluster (trivial fast paths) and a collectors run.

Deliberate exception: partitioned runs with more pools than servers are
NOT compared — the optimized simulator fixed the partition trim loop to
drop the smallest-demand pools there (see
``tests/simulator/test_partitioned.py::TestPartitionTrimRegression``),
while the reference preserves the old behaviour.  Every case here uses
``n_servers >= n_pools``, where the fix changes nothing.
"""

import pytest

from repro.simulator.cluster_sim import (
    ClusterSimConfig,
    ClusterSimulator,
    servers_for_overcommitment,
)
from repro.simulator.reference import ReferenceClusterSimulator
from repro.traces.azure import AzureTraceConfig, synthesize_azure_trace

POLICIES = ("proportional", "priority", "deterministic", "preemption")

#: Result fields compared one by one (better pytest diffs than a single ==).
_FIELDS = (
    "n_vms",
    "n_deflatable",
    "n_placed",
    "n_rejected_deflatable",
    "n_rejected_on_demand",
    "n_preempted",
    "n_reclaim_failures",
    "peak_committed_cores",
    "total_capacity_cores",
    "throughput_loss",
    "mean_deflation",
    "revenue",
    "revenue_per_server",
    "collected",
)


@pytest.fixture(scope="module")
def golden_trace():
    return synthesize_azure_trace(AzureTraceConfig(n_vms=500, seed=2024))


@pytest.fixture(scope="module")
def tight_servers(golden_trace):
    # ~50% target overcommitment: enough pressure for deflation, rejection
    # and preemption events on every policy.
    return servers_for_overcommitment(golden_trace, 0.5)


def assert_bit_identical(golden_trace, config):
    expected = ReferenceClusterSimulator(golden_trace, config).run()
    actual = ClusterSimulator(golden_trace, config).run()
    for name in _FIELDS:
        exp, act = getattr(expected, name), getattr(actual, name)
        assert exp == act, f"{name}: reference={exp!r} optimized={act!r}"
    assert expected == actual  # config + every field, in one shot


@pytest.mark.parametrize("policy", POLICIES)
@pytest.mark.parametrize("partitioned", [False, True], ids=["flat", "partitioned"])
def test_tight_cluster_bit_identical(golden_trace, tight_servers, policy, partitioned):
    config = ClusterSimConfig(
        n_servers=tight_servers, policy=policy, partitioned=partitioned
    )
    assert_bit_identical(golden_trace, config)


@pytest.mark.parametrize("policy", ("proportional", "preemption"))
def test_roomy_cluster_bit_identical(golden_trace, tight_servers, policy):
    """No-pressure regime: the zero-required rebalance fast path dominates."""
    config = ClusterSimConfig(n_servers=3 * tight_servers, policy=policy)
    assert_bit_identical(golden_trace, config)


def test_collectors_and_min_fraction_bit_identical(golden_trace, tight_servers):
    config = ClusterSimConfig(
        n_servers=tight_servers,
        policy="priority",
        min_fraction=0.25,
        collectors=("event-counts", "timeline", "rejection-log"),
    )
    assert_bit_identical(golden_trace, config)


def test_post_build_surgery_bit_identical(golden_trace, tight_servers):
    """The build()-then-mutate flow (priority-level ablation) stays golden.

    The ablation re-quantizes ``vm_prio`` / ``vm_floor`` on a built
    simulator before run(); the optimized simulator's derived caches must
    reflect that surgery exactly like the reference's live per-event reads.
    """
    import numpy as np

    config = ClusterSimConfig(n_servers=tight_servers, policy="priority")
    levels = (np.arange(2) + 1) / 3.0  # quantize onto 2 levels
    results = []
    for cls in (ReferenceClusterSimulator, ClusterSimulator):
        sim = cls(golden_trace, config)
        quantized = levels[
            np.clip(np.searchsorted(levels, sim.vm_prio, side="left"), 0, 1)
        ]
        sim.vm_prio = np.where(sim.vm_deflatable, quantized, 1.0)
        sim.vm_floor = np.maximum(
            sim.vm_caps * config.min_fraction, sim.vm_caps * sim.vm_prio[:, None]
        )
        sim.vm_floor[~sim.vm_deflatable] = 0.0
        results.append(sim.run())
    expected, actual = results
    for name in _FIELDS:
        assert getattr(expected, name) == getattr(actual, name), name


def test_allocation_series_match(golden_trace, tight_servers):
    """Per-VM allocation series (not just aggregates) agree bitwise."""
    config = ClusterSimConfig(n_servers=tight_servers, policy="proportional")
    ref = ReferenceClusterSimulator(golden_trace, config)
    ref.run()
    opt = ClusterSimulator(golden_trace, config)
    opt.run()
    for i, rec in enumerate(golden_trace):
        r_out, o_out = ref.outcomes[i], opt.outcomes[i]
        assert (r_out.placed, r_out.rejected, r_out.preempted) == (
            o_out.placed,
            o_out.rejected,
            o_out.preempted,
        )
        if not r_out.deflatable or not r_out.placed:
            continue
        r_series = ref._allocation_series(rec, r_out)
        o_series = opt._allocation_series(rec, o_out)
        assert r_series.tolist() == o_series.tolist(), f"vm {i}"
