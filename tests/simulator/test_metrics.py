"""Tests for overcommitment sweeps and the Figure 20/21/22 orderings."""

import pytest

from repro.errors import SimulationError
from repro.simulator.metrics import OvercommitSweep, overcommitment_sweep
from repro.traces.azure import AzureTraceConfig, synthesize_azure_trace


@pytest.fixture(scope="module")
def sweep() -> OvercommitSweep:
    traces = synthesize_azure_trace(AzureTraceConfig(n_vms=400, seed=21))
    return overcommitment_sweep(traces, levels=(0.0, 0.3, 0.6))


class TestStructure:
    def test_all_policies_present(self, sweep):
        assert set(sweep.points) == {
            "proportional",
            "priority",
            "deterministic",
            "preemption",
        }

    def test_levels_preserved(self, sweep):
        for series in sweep.points.values():
            assert [p.overcommitment_target for p in series] == [0.0, 0.3, 0.6]

    def test_server_counts_decrease(self, sweep):
        counts = [p.n_servers for p in sweep.points["proportional"]]
        assert counts == sorted(counts, reverse=True)

    def test_unknown_policy_lookup(self, sweep):
        with pytest.raises(SimulationError):
            sweep.failure_probabilities("nope")

    def test_unknown_pricing_lookup(self, sweep):
        with pytest.raises(SimulationError):
            sweep.revenue_increase("priority", "gold-plated")


class TestPaperOrderings:
    """The relational results of Figures 20-22."""

    def test_fig20_preemption_dominates_deflation_failures(self, sweep):
        at_60 = {
            p: dict(sweep.failure_probabilities(p))[60.0]
            for p in ("proportional", "priority", "deterministic", "preemption")
        }
        assert at_60["preemption"] > 0.1
        for policy in ("proportional", "priority", "deterministic"):
            assert at_60[policy] < at_60["preemption"] / 3

    def test_fig20_proportional_lowest_failure(self, sweep):
        for oc in (30.0, 60.0):
            vals = {
                p: dict(sweep.failure_probabilities(p))[oc]
                for p in ("proportional", "priority", "deterministic")
            }
            assert vals["proportional"] <= vals["priority"] + 1e-9
            assert vals["proportional"] <= vals["deterministic"] + 1e-9

    def test_fig21_priority_beats_proportional_on_throughput(self, sweep):
        at_60 = {
            p: dict(sweep.throughput_losses(p))[60.0]
            for p in ("proportional", "priority", "deterministic")
        }
        assert at_60["priority"] < at_60["proportional"]
        assert at_60["deterministic"] < at_60["proportional"]

    def test_fig21_loss_small_at_low_overcommitment(self, sweep):
        for policy in ("proportional", "priority", "deterministic"):
            at_0 = dict(sweep.throughput_losses(policy))[0.0]
            assert at_0 < 0.02

    def test_fig22_priority_pricing_above_static(self, sweep):
        static = dict(sweep.revenue_increase("priority", "static"))
        prio = dict(sweep.revenue_increase("priority", "priority"))
        for oc in (0.0, 30.0, 60.0):
            assert prio[oc] > static[oc]

    def test_fig22_static_revenue_grows_with_overcommitment(self, sweep):
        static = [v for _, v in sweep.revenue_increase("priority", "static")]
        assert static[-1] > static[0]

    def test_fig22_allocation_pricing_dampened(self, sweep):
        static = dict(sweep.revenue_increase("priority", "static"))
        alloc = dict(sweep.revenue_increase("priority", "allocation"))
        assert alloc[60.0] < static[60.0]


class TestValidation:
    def test_empty_levels(self):
        traces = synthesize_azure_trace(AzureTraceConfig(n_vms=20, seed=1))
        with pytest.raises(SimulationError):
            overcommitment_sweep(traces, levels=())
