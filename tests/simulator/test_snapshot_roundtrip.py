"""Golden snapshot/resume bit-equivalence (docs/testing.md).

The checkpoint contract: run to ``t``, :meth:`snapshot`, restore into a
freshly built simulator, run to the end — bit-identical to the
uninterrupted run, for all four policies x every failure regime x
{flat, partitioned}.  Snapshots must survive pickle (they ride to sweep
workers under fork *and* spawn), so every round trip here goes through
bytes.  Like the golden-reference and cross-engine suites, fields are
compared one by one first for readable diffs, then the whole result.
"""

from __future__ import annotations

import pickle

import pytest

from repro.errors import SimulationError
from repro.runtime import resolve_start_method
from repro.scenario import ClusterSimEngine, Scenario, resolve_cluster, run_sweep

POLICIES = ("proportional", "priority", "deterministic", "preemption")

_FIELDS = (
    "n_vms",
    "n_deflatable",
    "n_placed",
    "n_rejected_deflatable",
    "n_rejected_on_demand",
    "n_preempted",
    "n_reclaim_failures",
    "peak_committed_cores",
    "total_capacity_cores",
    "throughput_loss",
    "mean_deflation",
    "revenue",
    "revenue_per_server",
    "collected",
)

#: Failure regimes the matrix crosses with every policy and both shapes.
REGIMES = {
    "failure-free": lambda s: s,
    "spot-evacuate": lambda s: s.with_failures("spot", rate=0.004, seed=7, response="evacuate"),
    "spot-kill": lambda s: s.with_failures(
        "spot", rate=0.004, seed=7, response="kill", restart_delay=2
    ),
    "correlated": lambda s: s.with_topology(racks=4).with_failures(
        "correlated-spot", rate=0.004, seed=7, response="evacuate"
    ),
    "warned-drain": lambda s: s.with_failures(
        "spot", rate=0.004, seed=7, response="evacuate", warning_intervals=3, evacuation_budget=2
    ),
    "elastic": lambda s: s.with_failures("elastic-pool", rate=0.004, arrival_rate=0.02, seed=7),
    "capacity-dips": lambda s: s.with_failures(
        "capacity-dips", rate=0.004, depth=0.5, mean_duration=12, seed=3
    ),
}


@pytest.fixture(scope="module")
def base_scenario():
    # Tight cluster: real deflation, rejections, evacuations on every policy.
    return (
        Scenario(name="roundtrip")
        .with_workload("azure", n_vms=300, seed=2024)
        .with_overcommitment(0.5)
        .with_collectors("event-counts", "failure-log")
    )


@pytest.fixture(scope="module")
def boundary(base_scenario):
    """A mid-trace event boundary: activity both before and after it."""
    traces, _ = resolve_cluster(base_scenario)
    return 0.4 * float(traces.horizon())


def shaped(scenario, shape: str) -> Scenario:
    return scenario.with_partitions() if shape == "partitioned" else scenario


def roundtrip(scenario, at: float):
    """Cold run + pickled save→restore→run; returns ``(cold, resumed)``."""
    cold = scenario.run()
    engine = ClusterSimEngine()
    warm = engine.build(scenario)
    warm.run_until(at)
    snap = pickle.loads(pickle.dumps(warm.snapshot()))
    target = engine.build(scenario)
    target.restore(snap)
    return cold, target.run()


def assert_roundtrip_identical(scenario, at: float) -> None:
    cold, resumed = roundtrip(scenario, at)
    for name in _FIELDS:
        exp, act = getattr(cold.sim, name), getattr(resumed, name)
        assert exp == act, f"{name}: cold={exp!r} resumed={act!r}"
    assert cold.sim == resumed  # config + every field, in one shot


@pytest.mark.parametrize("shape", ("flat", "partitioned"))
@pytest.mark.parametrize("regime", REGIMES)
@pytest.mark.parametrize("policy", POLICIES)
def test_save_restore_run_bit_identical(base_scenario, boundary, policy, regime, shape):
    scenario = REGIMES[regime](shaped(base_scenario.with_policy(policy), shape))
    assert_roundtrip_identical(scenario, boundary)


def test_snapshot_at_zero_replays_the_whole_trace(base_scenario):
    """A boundary before the first event: the restore carries everything."""
    scenario = REGIMES["spot-evacuate"](base_scenario.with_policy("proportional"))
    assert_roundtrip_identical(scenario, 1e-9)


def test_chained_checkpoints_bit_identical(base_scenario, boundary):
    """snapshot → restore → run further → snapshot again → restore → run."""
    scenario = REGIMES["warned-drain"](base_scenario.with_policy("priority"))
    cold = scenario.run()
    engine = ClusterSimEngine()

    first = engine.build(scenario)
    first.run_until(boundary / 2)
    snap1 = pickle.loads(pickle.dumps(first.snapshot()))

    second = engine.build(scenario)
    second.restore(snap1)
    second.run_until(boundary)
    snap2 = pickle.loads(pickle.dumps(second.snapshot()))

    third = engine.build(scenario)
    third.restore(snap2)
    assert cold.sim == third.run()


def test_fingerprint_is_deterministic_and_boundary_sensitive(base_scenario, boundary):
    scenario = REGIMES["spot-kill"](base_scenario.with_policy("proportional"))
    engine = ClusterSimEngine()

    def snap_at(at):
        sim = engine.build(scenario)
        sim.run_until(at)
        return sim.snapshot()

    a, b = snap_at(boundary), snap_at(boundary)
    assert a.fingerprint() == b.fingerprint()  # independent builds, same bits
    assert snap_at(boundary / 2).fingerprint() != a.fingerprint()
    # Pickling preserves the fingerprint exactly (it rides to workers).
    assert pickle.loads(pickle.dumps(a)).fingerprint() == a.fingerprint()


def test_recapture_after_restore_is_bit_identical(base_scenario, boundary):
    """Restoring and immediately re-freezing reproduces the same snapshot —
    restore loses nothing and invents nothing."""
    scenario = REGIMES["elastic"](shaped(base_scenario.with_policy("deterministic"), "partitioned"))
    engine = ClusterSimEngine()
    warm = engine.build(scenario)
    warm.run_until(boundary)
    snap = warm.snapshot()
    target = engine.build(scenario)
    target.restore(pickle.loads(pickle.dumps(snap)))
    assert target.snapshot().fingerprint() == snap.fingerprint()


def test_run_until_is_monotonic(base_scenario, boundary):
    sim = ClusterSimEngine().build(base_scenario.with_policy("proportional"))
    sim.run_until(boundary)
    sim.run_until(boundary)  # idempotent at the same boundary
    with pytest.raises(SimulationError, match="backward"):
        sim.run_until(boundary / 2)


def test_snapshot_requires_an_open_stream(base_scenario):
    sim = ClusterSimEngine().build(base_scenario.with_policy("proportional"))
    with pytest.raises(SimulationError, match="run_until"):
        sim.snapshot()


@pytest.mark.slow
@pytest.mark.parametrize("start_method", ("fork", "spawn"))
def test_checkpointed_sweep_across_start_methods(base_scenario, boundary, start_method):
    """Snapshots ride to workers under both start methods, bit-identically.

    Spawn workers re-import and unpickle everything; fork workers inherit
    memory.  Neither may change a float.
    """
    try:
        resolve_start_method(start_method)
    except SimulationError:
        pytest.skip(f"start method {start_method!r} unavailable on this platform")
    scenarios = [
        REGIMES[regime](shaped(base_scenario.with_policy(policy), shape))
        for policy, regime, shape in (
            ("proportional", "spot-evacuate", "flat"),
            ("priority", "warned-drain", "partitioned"),
            ("deterministic", "elastic", "flat"),
            ("preemption", "capacity-dips", "partitioned"),
        )
    ]
    cold = [s.run() for s in scenarios]
    engine = ClusterSimEngine()
    warm_grid = []
    for s in scenarios:
        sim = engine.build(s)
        sim.run_until(boundary)
        warm_grid.append(s.with_checkpoint(sim.snapshot()))
    resumed = run_sweep(warm_grid, workers=2, start_method=start_method)
    for c, r in zip(cold, resumed):
        assert c.sim == r.sim
