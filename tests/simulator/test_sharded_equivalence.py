"""Golden cross-engine bit-equivalence: ``sharded`` vs ``cluster-sim``.

The sharded engine (:mod:`repro.simulator.sharded`) splits a partitioned
scenario into per-pool sub-scenarios, replays them (possibly in parallel
worker processes), and merges the shard results.  Like the optimized
simulator's golden suite against the pinned reference
(``test_golden_equivalence.py``), the contract is **bit-identity**: every
observable of the merged :class:`ClusterSimResult` — counts, the peak
committed-cores trajectory maximum, throughput loss, mean deflation, all
revenue dicts, collector payloads, and the failure-injection summary —
must equal the flat partitioned run exactly, for all four policies, with
and without failure injection, for any worker count.

This is the merge discipline every future distributed engine must keep:
per-VM metric terms re-reduced in global VM order, event deltas and
order-sensitive float accruals replayed in global ``(t, kind, key)``
order, and failure schedules sliced from the flat schedule rather than
re-generated.
"""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.scenario import Scenario, run_sweep
from repro.simulator.sharded import ShardedEngine, plan_shards
from repro.traces.azure import AzureTraceConfig, synthesize_azure_trace
from repro.traces.schema import VMTraceSet

POLICIES = ("proportional", "priority", "deterministic", "preemption")

#: Result fields compared one by one (better pytest diffs than a single ==).
_FIELDS = (
    "n_vms",
    "n_deflatable",
    "n_placed",
    "n_rejected_deflatable",
    "n_rejected_on_demand",
    "n_preempted",
    "n_reclaim_failures",
    "peak_committed_cores",
    "total_capacity_cores",
    "throughput_loss",
    "mean_deflation",
    "revenue",
    "revenue_per_server",
    "collected",
)


@pytest.fixture(scope="module")
def base_scenario():
    # Tight cluster (~50% OC target): real deflation, rejections, and
    # preemptions on every policy — the non-trivial merge paths.
    return (
        Scenario(name="cross-engine")
        .with_workload("azure", n_vms=500, seed=2024)
        .with_overcommitment(0.5)
        .with_partitions()
    )


def assert_cross_engine_identical(scenario):
    flat = scenario.run(engine="cluster-sim")
    sharded = scenario.run(engine="sharded")
    for name in _FIELDS:
        exp, act = getattr(flat.sim, name), getattr(sharded.sim, name)
        assert exp == act, f"{name}: cluster-sim={exp!r} sharded={act!r}"
    assert flat.sim == sharded.sim  # config + every field, in one shot


@pytest.mark.parametrize("policy", POLICIES)
def test_failure_free_bit_identical(base_scenario, policy):
    assert_cross_engine_identical(base_scenario.with_policy(policy))


@pytest.mark.parametrize("policy", POLICIES)
def test_spot_evacuate_bit_identical(base_scenario, policy):
    """Deflation-first evacuation off revoked servers, merged exactly."""
    assert_cross_engine_identical(
        base_scenario.with_policy(policy).with_failures(
            "spot", rate=0.004, seed=7, response="evacuate"
        )
    )


@pytest.mark.parametrize("policy", POLICIES)
def test_spot_kill_requeue_bit_identical(base_scenario, policy):
    """Kill-and-requeue adds dynamic REQUEUE events; still exact."""
    assert_cross_engine_identical(
        base_scenario.with_policy(policy).with_failures(
            "spot", rate=0.004, seed=7, response="kill", restart_delay=2
        )
    )


@pytest.mark.parametrize("policy", ("proportional", "preemption"))
def test_capacity_dips_bit_identical(base_scenario, policy):
    """Dips squeeze/reinflate (or evict, on the baseline) per shard."""
    assert_cross_engine_identical(
        base_scenario.with_policy(policy).with_failures(
            "capacity-dips", rate=0.004, depth=0.5, mean_duration=12, seed=3
        )
    )


def test_collectors_merge_bit_identical(base_scenario):
    """Mergeable collectors reproduce the flat payloads exactly.

    ``event-counts`` merges by summation; ``rejection-log`` and
    ``failure-log`` additionally remap shard-local indices to global ones
    and restore the global event order.
    """
    scenario = (
        base_scenario.with_policy("proportional")
        .with_collectors("event-counts", "rejection-log", "failure-log")
        .with_failures("spot", rate=0.004, seed=7, response="evacuate")
    )
    assert_cross_engine_identical(scenario)


@pytest.mark.parametrize("policy", ("proportional", "preemption"))
def test_correlated_spot_bit_identical(base_scenario, policy):
    """Whole-rack bursts, sliced (never re-seeded) per shard."""
    assert_cross_engine_identical(
        base_scenario.with_policy(policy)
        .with_topology(racks=4)
        .with_failures("correlated-spot", rate=0.004, seed=7, response="evacuate")
    )


@pytest.mark.parametrize("policy", ("proportional", "preemption"))
def test_warning_budget_drain_bit_identical(base_scenario, policy):
    """Drain ticks and deadlines replay in global (t, kind, key) order."""
    assert_cross_engine_identical(
        base_scenario.with_policy(policy).with_failures(
            "spot",
            rate=0.004,
            seed=7,
            response="evacuate",
            warning_intervals=3,
            evacuation_budget=2,
        )
    )


def test_cores_budget_drain_bit_identical(base_scenario):
    assert_cross_engine_identical(
        base_scenario.with_policy("proportional")
        .with_topology(racks=6)
        .with_failures(
            "correlated-spot",
            rate=0.004,
            seed=7,
            warning_intervals=2,
            evacuation_budget={"cores": 8.0},
        )
    )


@pytest.mark.parametrize("policy", ("proportional", "preemption"))
def test_elastic_pool_arrivals_bit_identical(base_scenario, policy):
    """Mid-run server attach: arrivals route to pools by the static
    ``ordinal mod n_pools`` rule in both engines, and the nominal-capacity
    accounting (initial tile sum + arrival accruals) merges exactly."""
    assert_cross_engine_identical(
        base_scenario.with_policy(policy).with_failures(
            "elastic-pool", rate=0.004, arrival_rate=0.02, seed=7
        )
    )


def test_churn_collectors_merge_bit_identical(base_scenario):
    """failure-log entries for arrivals and deadlines remap through the
    shard arrival table and restore the flat event order."""
    assert_cross_engine_identical(
        base_scenario.with_policy("proportional")
        .with_collectors("event-counts", "rejection-log", "failure-log")
        .with_failures(
            "elastic-pool",
            rate=0.004,
            arrival_rate=0.02,
            seed=7,
            warning_intervals=2,
            evacuation_budget=1,
        )
    )


def test_explicit_traces_and_servers(base_scenario):
    """Explicit trace sets and explicit cluster sizes shard too."""
    traces = synthesize_azure_trace(AzureTraceConfig(n_vms=300, seed=9))
    scenario = (
        Scenario(name="explicit")
        .with_traces(traces)
        .with_servers(24)
        .with_partitions()
        .with_policy("priority")
    )
    assert_cross_engine_identical(scenario)


def test_workers_do_not_change_results(base_scenario, monkeypatch):
    """Worker count is an execution knob: serial == parallel, bit for bit.

    Effective workers are capped at the CPU count, so the cap is lifted
    here to force the real pool path even on single-core CI runners.
    """
    import repro.simulator.sharded as sharded_mod

    monkeypatch.setattr(sharded_mod.os, "cpu_count", lambda: 8)
    scenario = base_scenario.with_policy("proportional").with_failures(
        "spot", rate=0.004, seed=7, response="kill", restart_delay=2
    )
    serial = ShardedEngine(workers=1).run(scenario)
    parallel = ShardedEngine(workers=4).run(scenario)
    assert serial.sim == parallel.sim


def test_sharded_inside_run_sweep(base_scenario):
    """Sharded scenarios ride run_sweep's own pool (shards fall back to
    serial inside daemon workers) and still match the flat grid."""
    grid = [
        base_scenario.with_policy(policy).with_overcommitment(oc)
        for policy in ("proportional", "preemption")
        for oc in (0.2, 0.5)
    ]
    flat = run_sweep(grid)
    sharded = run_sweep([s.with_engine("sharded") for s in grid], workers=2)
    for f, s in zip(flat, sharded):
        assert f.sim == s.sim


class TestShardPlan:
    def test_pools_cover_cluster_disjointly(self, base_scenario):
        plan = plan_shards(base_scenario.with_policy("proportional"))
        assert sum(spec.config.n_servers for spec in plan.specs) == plan.n_servers
        offsets = [spec.server_offset for spec in plan.specs]
        assert offsets == sorted(offsets)
        # every VM lands in exactly one shard
        all_vms = np.concatenate([spec.vm_global for spec in plan.specs])
        assert sorted(all_vms.tolist()) == list(range(500))

    def test_failure_slices_partition_the_flat_schedule(self, base_scenario):
        scenario = base_scenario.with_policy("proportional").with_failures(
            "spot", rate=0.01, seed=7
        )
        plan = plan_shards(scenario)
        total = sum(len(spec.failures) for spec in plan.specs)
        assert total > 0
        for spec in plan.specs:
            for ev in spec.failures:
                assert 0 <= ev.server < spec.config.n_servers

    def test_non_partitioned_rejected(self):
        scenario = Scenario().with_workload("azure", n_vms=50, seed=1)
        with pytest.raises(SimulationError, match="partitioned"):
            plan_shards(scenario)

    def test_unmergeable_collector_rejected(self, base_scenario):
        scenario = base_scenario.with_collectors("timeline")
        with pytest.raises(SimulationError, match="timeline"):
            plan_shards(scenario)

    def test_pools_outnumbering_servers_rejected(self):
        traces = synthesize_azure_trace(AzureTraceConfig(n_vms=60, seed=3))
        scenario = (
            Scenario().with_traces(traces).with_servers(3).with_partitions()
        )
        with pytest.raises(SimulationError, match="outnumber"):
            plan_shards(scenario)

    def test_empty_pool_still_contributes_capacity(self):
        """An all-interactive trace leaves the on-demand pool VM-less; its
        servers still count toward capacity and still absorb failures."""
        from repro.core.vm import VMClass

        cfg = AzureTraceConfig(
            n_vms=120, seed=5, class_mix={VMClass.INTERACTIVE: 1.0}
        )
        traces = synthesize_azure_trace(cfg)
        scenario = (
            Scenario(name="all-interactive")
            .with_traces(traces)
            .with_servers(12)
            .with_partitions()
            .with_policy("proportional")
            .with_failures("spot", rate=0.01, seed=11)
        )
        plan = plan_shards(scenario)
        assert any(len(spec.traces) == 0 for spec in plan.specs)
        assert_cross_engine_identical(scenario)


def test_tiny_cluster_one_server_pools():
    """Near the one-server-per-pool minimum, shard boundaries still hold."""
    records = synthesize_azure_trace(AzureTraceConfig(n_vms=200, seed=13)).records
    scenario = (
        Scenario(name="tiny-cluster")
        .with_traces(VMTraceSet(records))
        .with_servers(10)
        .with_partitions()
        .with_policy("deterministic")
    )
    assert_cross_engine_identical(scenario)
