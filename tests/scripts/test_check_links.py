"""Unit tests for the docs link checker (``scripts/check_links.py``).

The checker gates the CI docs job, so it needs its own tests: a checker
that silently passes broken anchors (or flags valid ones) corrupts the
whole docs-stay-honest discipline.
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

import pytest

_SCRIPT = Path(__file__).resolve().parents[2] / "scripts" / "check_links.py"
_spec = importlib.util.spec_from_file_location("check_links", _SCRIPT)
check_links = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_links)


def write(tmp_path: Path, name: str, text: str) -> Path:
    p = tmp_path / name
    p.parent.mkdir(parents=True, exist_ok=True)
    p.write_text(text, encoding="utf-8")
    return p


class TestSlugs:
    @pytest.mark.parametrize(
        "heading,slug",
        [
            ("Plain Heading", "plain-heading"),
            ("With `code` bits", "with-code-bits"),
            ("Punctuation, (dropped)!", "punctuation-dropped"),
            ("[linked](target.md) heading", "linked-heading"),
            ("Hyphen-ated words", "hyphen-ated-words"),
        ],
    )
    def test_github_slug(self, heading, slug):
        assert check_links.github_slug(heading) == slug

    def test_duplicate_headings_get_suffixes(self, tmp_path):
        page = write(
            tmp_path, "page.md", "# Setup\ntext\n## Setup\nmore\n## Setup\n"
        )
        assert {"setup", "setup-1", "setup-2"} <= check_links.anchor_slugs(page)

    def test_html_anchors_count(self, tmp_path):
        page = write(tmp_path, "page.md", '<a id="pinned"></a>\n<a name="legacy">\n')
        assert {"pinned", "legacy"} <= check_links.anchor_slugs(page)

    def test_headings_in_code_blocks_ignored(self, tmp_path):
        page = write(tmp_path, "page.md", "```\n# not a heading\n```\n# Real\n")
        slugs = check_links.anchor_slugs(page)
        assert "real" in slugs and "not-a-heading" not in slugs


class TestCheckFile:
    def test_valid_relative_link_and_anchor(self, tmp_path):
        write(tmp_path, "other.md", "# Target Section\n")
        page = write(
            tmp_path, "page.md", "[ok](other.md) and [ok](other.md#target-section)\n"
        )
        assert check_links.check_file(page) == []

    def test_broken_file_target(self, tmp_path):
        page = write(tmp_path, "page.md", "[nope](missing.md)\n")
        errors = check_links.check_file(page)
        assert len(errors) == 1 and "missing.md" in errors[0]

    def test_broken_anchor(self, tmp_path):
        write(tmp_path, "other.md", "# Only Section\n")
        page = write(tmp_path, "page.md", "[nope](other.md#absent)\n")
        errors = check_links.check_file(page)
        assert len(errors) == 1 and "#absent" in errors[0]

    def test_same_file_fragment(self, tmp_path):
        page = write(tmp_path, "page.md", "# Intro\n[up](#intro) [bad](#outro)\n")
        errors = check_links.check_file(page)
        assert len(errors) == 1 and "#outro" in errors[0]

    def test_duplicate_heading_anchor_resolves(self, tmp_path):
        write(tmp_path, "other.md", "## Round\n## Round\n")
        page = write(tmp_path, "page.md", "[second](other.md#round-1)\n")
        assert check_links.check_file(page) == []

    def test_external_urls_not_fetched(self, tmp_path):
        page = write(
            tmp_path, "page.md", "[x](https://example.invalid/nope) [y](mailto:a@b)\n"
        )
        assert check_links.check_file(page) == []

    def test_links_in_code_ignored(self, tmp_path):
        page = write(
            tmp_path,
            "page.md",
            "```\n[no](missing.md)\n```\ninline `[no](missing.md)` code\n",
        )
        assert check_links.check_file(page) == []

    def test_reference_definitions_checked(self, tmp_path):
        write(tmp_path, "real.md", "# Here\n")
        page = write(
            tmp_path,
            "page.md",
            "See [the page][good] and [more][bad].\n\n"
            "[good]: real.md#here\n[bad]: gone.md\n",
        )
        errors = check_links.check_file(page)
        assert len(errors) == 1 and "gone.md" in errors[0]

    def test_undefined_reference_flagged(self, tmp_path):
        page = write(tmp_path, "page.md", "A [dangling][nowhere] reference.\n")
        errors = check_links.check_file(page)
        assert len(errors) == 1 and "nowhere" in errors[0]

    def test_collapsed_reference_uses_text_as_label(self, tmp_path):
        page = write(tmp_path, "page.md", "[Spec][] here.\n\n[spec]: page.md\n")
        assert check_links.check_file(page) == []

    def test_indexing_prose_is_not_a_reference(self, tmp_path):
        page = write(tmp_path, "page.md", "use `arr[i][0]` to index\n")
        assert check_links.check_file(page) == []


class TestReferencedDocs:
    """Top-page mentions of docs/ files must exist even outside link syntax."""

    def test_prose_mention_of_missing_page_flagged(self, tmp_path):
        write(tmp_path, "README.md", "the catalogue is `docs/phantom.md`\n")
        errors = check_links.referenced_docs_errors(tmp_path)
        assert len(errors) == 1
        page, lineno, msg = errors[0]
        assert page.name == "README.md" and lineno == 1
        assert "docs/phantom.md" in msg

    def test_existing_mentions_pass(self, tmp_path):
        write(tmp_path, "ROADMAP.md", "see docs/real.md for details\n")
        write(tmp_path, "docs/real.md", "# Real\n")
        assert check_links.referenced_docs_errors(tmp_path) == []

    def test_absent_top_pages_are_skipped(self, tmp_path):
        assert check_links.referenced_docs_errors(tmp_path) == []

    def test_non_top_pages_are_not_scanned(self, tmp_path):
        write(tmp_path, "docs/inner.md", "mentions docs/phantom.md freely\n")
        assert check_links.referenced_docs_errors(tmp_path) == []

    def test_main_folds_referenced_docs_into_exit_status(
        self, tmp_path, monkeypatch, capsys
    ):
        write(tmp_path, "README.md", "# Top\n\nsee `docs/phantom.md`\n")
        monkeypatch.chdir(tmp_path)
        assert check_links.main(["README.md"]) == 1
        assert "phantom" in capsys.readouterr().err


class TestMain:
    def test_exit_status_counts_errors(self, tmp_path, monkeypatch, capsys):
        write(tmp_path, "docs/a.md", "[bad](gone.md)\n[worse](also-gone.md)\n")
        monkeypatch.chdir(tmp_path)
        assert check_links.main(["docs"]) == 2
        out = capsys.readouterr()
        assert "2 broken links" in out.out

    def test_clean_tree_exits_zero(self, tmp_path, monkeypatch):
        write(tmp_path, "docs/a.md", "# A\n[b](b.md)\n")
        write(tmp_path, "docs/b.md", "# B\n[a](a.md#a)\n")
        monkeypatch.chdir(tmp_path)
        assert check_links.main(["docs"]) == 0

    def test_repo_docs_pass_with_anchors(self):
        """The real tree must stay clean under the extended checker."""
        repo = Path(__file__).resolve().parents[2]
        files = [repo / "README.md", *sorted((repo / "docs").rglob("*.md"))]
        errors = []
        for f in files:
            errors.extend(check_links.check_file(f))
        assert errors == []
