"""Randomized cross-mode equivalence (docs/testing.md).

Property: for any generated scenario, every execution mode produces the
same bits — serial == parallel sweep == resumed-from-snapshot, and ==
the sharded engine where the scenario qualifies for it.  The pinned
suites cover hand-picked corners; this layer walks the configuration
space broadly (policy x sizing x partitioning x collectors x failure
regime, via ``tests/strategies.py``).

Deterministic by construction: CI replays the fixed default seed; a
failure names ``(seed, index)``, which regenerates the exact scenario.
Run with ``--repro-fuzz-seed=N`` to probe fresh ground; any seed that
finds a divergence should be promoted to a pinned regression test.
"""

from __future__ import annotations

import pytest
from strategies import scenario_batch, waterfill_stress_batch

from repro.errors import SimulationError
from repro.scenario import ClusterSimEngine, resolve_cluster, run_scenario, run_sweep
from repro.simulator.sharded import plan_shards

#: Tier-1 keeps a small deterministic batch; the slow layer runs ~50.
SMALL_N = 8
FULL_N = 50

#: Fraction of the trace horizon at which the resume checkpoint is taken —
#: late enough that real placements/failures land in the prefix.
BOUNDARY_FRACTION = 0.4


def _resumed(scenario):
    """Cold prefix to the boundary, snapshot, finish from the checkpoint."""
    traces, _ = resolve_cluster(scenario)
    warm = ClusterSimEngine().build(scenario)
    warm.run_until(BOUNDARY_FRACTION * float(traces.horizon()))
    return run_scenario(scenario.with_checkpoint(warm.snapshot()))


def _shardable(scenario) -> bool:
    if not scenario.partitioned:
        return False
    try:
        plan_shards(scenario)
    except SimulationError:
        return False  # e.g. pools outnumber a tiny explicit cluster
    return True


def _assert_modes_agree(scenarios, seed: int) -> None:
    cold = [run_scenario(s) for s in scenarios]
    parallel = run_sweep(scenarios, workers=2)
    n_sharded = 0
    for i, (scenario, c, p) in enumerate(zip(scenarios, cold, parallel)):
        ctx = f"--repro-fuzz-seed={seed} index={i}: {scenario.describe()}"
        assert c.sim == p.sim, f"parallel diverged from serial ({ctx})"
        assert _resumed(scenario).sim == c.sim, f"resume diverged from cold ({ctx})"
        if _shardable(scenario):
            n_sharded += 1
            assert scenario.run(engine="sharded").sim == c.sim, (
                f"sharded diverged from flat ({ctx})"
            )
    # The batch must actually exercise the cross-engine arm; with ~half the
    # scenarios partitioned this only trips if the generator drifts.
    assert n_sharded > 0, f"no generated scenario qualified for sharding (seed={seed})"


def test_randomized_equivalence(fuzz_seed):
    _assert_modes_agree(scenario_batch(fuzz_seed, SMALL_N), fuzz_seed)


@pytest.mark.slow
def test_randomized_equivalence_full(fuzz_seed):
    _assert_modes_agree(scenario_batch(fuzz_seed, FULL_N), fuzz_seed)


def test_waterfill_stress_equivalence(fuzz_seed):
    """Water-fill-corner scenarios (tests/strategies.py): the batched
    failure-free hot path and the closed-form solver against the strictly
    per-event stream/resume and sharded replays."""
    _assert_modes_agree(waterfill_stress_batch(fuzz_seed, SMALL_N), fuzz_seed)


@pytest.mark.slow
def test_waterfill_stress_equivalence_full(fuzz_seed):
    _assert_modes_agree(waterfill_stress_batch(fuzz_seed, FULL_N // 2), fuzz_seed)
