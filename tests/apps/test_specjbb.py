"""Tests for the SpecJBB memory-deflation study (Figure 14 shape)."""

import pytest

from repro.apps.specjbb import (
    FIG14_DEFLATION_PCT,
    SpecJBBConfig,
    run_specjbb_point,
    run_specjbb_sweep,
)
from repro.errors import SimulationError


@pytest.fixture(scope="module")
def sweep():
    return run_specjbb_sweep(SpecJBBConfig(), levels_pct=(0, 10, 20, 30, 40, 45))


class TestFig14Shape:
    def test_transparent_flat_until_rss(self, sweep):
        """No serious penalty while the limit stays above the touched set's
        hot part; flat to ~30%."""
        trans = {p.deflation_pct: p.normalized_rt for p in sweep["transparent"]}
        assert trans[0] == pytest.approx(1.0)
        for pct in (10, 20, 30):
            assert trans[pct] < 1.15

    def test_transparent_degrades_past_40(self, sweep):
        trans = {p.deflation_pct: p.normalized_rt for p in sweep["transparent"]}
        assert trans[45] > 1.3
        assert trans[45] > trans[30]

    def test_hybrid_10pct_better(self, sweep):
        """Figure 14: hybrid improves performance by ~10%."""
        hybrid = {p.deflation_pct: p.normalized_rt for p in sweep["hybrid"]}
        for pct in (10, 20, 30, 40):
            assert hybrid[pct] == pytest.approx(0.90, abs=0.03)

    def test_hybrid_beats_transparent_everywhere_deflated(self, sweep):
        trans = {p.deflation_pct: p.normalized_rt for p in sweep["transparent"]}
        hybrid = {p.deflation_pct: p.normalized_rt for p in sweep["hybrid"]}
        for pct in (10, 20, 30, 40, 45):
            assert hybrid[pct] < trans[pct]

    def test_hybrid_unplugs_memory(self, sweep):
        hybrid = {p.deflation_pct: p for p in sweep["hybrid"]}
        assert hybrid[30].hotplugged_out_mb > 0

    def test_transparent_never_unplugs(self, sweep):
        for p in sweep["transparent"]:
            assert p.hotplugged_out_mb == 0.0


class TestMechanics:
    def test_swap_accounting(self):
        cfg = SpecJBBConfig()
        p = run_specjbb_point(cfg, 45, "transparent")
        # Limit 8.8 GB < touched 14 GB: several GB swapped.
        assert p.swapped_mb > 4000

    def test_hybrid_swaps_less(self):
        cfg = SpecJBBConfig()
        t = run_specjbb_point(cfg, 45, "transparent")
        h = run_specjbb_point(cfg, 45, "hybrid")
        assert h.swapped_mb < t.swapped_mb

    def test_unknown_mechanism(self):
        with pytest.raises(SimulationError):
            run_specjbb_point(SpecJBBConfig(), 10, "magic")

    def test_default_levels(self):
        assert FIG14_DEFLATION_PCT[0] == 0
        assert FIG14_DEFLATION_PCT[-1] == 45
