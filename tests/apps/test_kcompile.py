"""Tests for the kernel-compile (make -j) model."""

import numpy as np
import pytest

from repro.apps.kcompile import (
    KcompileConfig,
    kcompile_curve,
    kcompile_throughput,
    makespan,
)
from repro.errors import SimulationError


class TestMakespan:
    def test_brent_bound(self):
        assert makespan(100.0, 10.0, 4) == pytest.approx(35.0)

    def test_more_cores_faster(self):
        assert makespan(100, 10, 8) < makespan(100, 10, 4)

    def test_span_is_floor(self):
        assert makespan(100, 10, 10_000) == pytest.approx(10.0, abs=0.1)

    def test_validation(self):
        with pytest.raises(SimulationError):
            makespan(100, 10, 0)


class TestThroughput:
    def test_undeflated_is_one(self):
        assert kcompile_throughput(0.0) == pytest.approx(1.0)

    def test_monotone_decreasing(self):
        curve = kcompile_curve(np.array([0.0, 0.25, 0.5, 0.75, 0.9]))
        assert np.all(np.diff(curve) <= 1e-9)

    def test_near_linear_in_mid_range(self):
        """A CPU-bound build tracks cores closely (Figure 3's middle curve)."""
        t = kcompile_throughput(0.5)
        assert 0.45 < t < 0.75  # close to the 0.5 a perfectly linear app gives

    def test_span_softens_the_hit(self):
        """More serial span = flatter curve (deflation hurts less)."""
        serial = kcompile_throughput(0.5, KcompileConfig(span_s=2000.0))
        parallel = kcompile_throughput(0.5, KcompileConfig(span_s=1.0))
        assert serial > parallel

    def test_validation(self):
        with pytest.raises(SimulationError):
            kcompile_throughput(1.0)

    def test_deterministic(self):
        assert kcompile_throughput(0.3) == kcompile_throughput(0.3)
