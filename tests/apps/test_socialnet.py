"""Tests for the social-network harness (Figure 18 shape)."""

import pytest

from repro.apps.socialnet import (
    FIG18_DEFLATION_PCT,
    run_socialnet_point,
    run_socialnet_sweep,
)


@pytest.fixture(scope="module")
def points():
    pts = run_socialnet_sweep(levels_pct=(0, 50, 65), duration_s=6.0, seed=13)
    return {p.deflation_pct: p for p in pts}


class TestShape:
    def test_fast_when_undeflated(self, points):
        assert points[0].median_ms < 15

    def test_flat_through_50(self, points):
        """Paper: the service can be deflated up to 50% without losses."""
        assert points[50].median_ms < 3 * points[0].median_ms
        assert points[50].served_fraction > 0.99

    def test_abrupt_beyond_50(self, points):
        """The degradation past the knee is sharper than Wikipedia's."""
        assert points[65].p99_ms > 3 * points[50].p99_ms

    def test_tail_amplifies_more_than_median(self, points):
        med_ratio = points[65].median_ms / points[0].median_ms
        p99_ratio = points[65].p99_ms / points[0].p99_ms
        assert p99_ratio > med_ratio

    def test_bottleneck_rho_reported(self, points):
        assert points[65].bottleneck_rho > 0.8


class TestMechanics:
    def test_default_levels_match_paper(self):
        assert FIG18_DEFLATION_PCT == (0, 30, 50, 60, 65)

    def test_determinism(self):
        a = run_socialnet_point(30, duration_s=3.0, seed=5)
        b = run_socialnet_point(30, duration_s=3.0, seed=5)
        assert a.median_ms == b.median_ms
