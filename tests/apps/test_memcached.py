"""Tests for the Memcached LRU/Zipf model."""

import numpy as np
import pytest

from repro.apps.memcached import (
    MemcachedConfig,
    che_hit_rate,
    memcached_curve,
    memcached_throughput,
    zipf_weights,
)
from repro.errors import SimulationError


class TestZipfWeights:
    def test_normalized(self):
        w = zipf_weights(1000, 0.9)
        assert w.sum() == pytest.approx(1.0)

    def test_decreasing(self):
        w = zipf_weights(1000, 0.9)
        assert np.all(np.diff(w) <= 0)

    def test_validation(self):
        with pytest.raises(SimulationError):
            zipf_weights(0, 0.9)


class TestCheApproximation:
    def test_empty_cache(self):
        w = zipf_weights(100, 0.9)
        assert che_hit_rate(w, 0) == 0.0

    def test_full_cache(self):
        w = zipf_weights(100, 0.9)
        assert che_hit_rate(w, 100) == 1.0

    def test_monotone_in_capacity(self):
        w = zipf_weights(10_000, 0.9)
        rates = [che_hit_rate(w, c) for c in (100, 1000, 5000)]
        assert rates == sorted(rates)

    def test_zipf_concentration(self):
        """10% of keys hold far more than 10% of the hits under Zipf."""
        w = zipf_weights(10_000, 1.0)
        assert che_hit_rate(w, 1000) > 0.45


class TestThroughputModel:
    def test_undeflated_is_one(self):
        assert memcached_throughput(0.0) == pytest.approx(1.0)

    def test_monotone_decreasing(self):
        d = np.array([0.0, 0.2, 0.4, 0.6, 0.8, 0.95])
        curve = memcached_curve(d)
        assert np.all(np.diff(curve) <= 1e-9)

    def test_slack_region(self):
        """Memcached has large slack (Figure 3): mild deflation is ~free."""
        assert memcached_throughput(0.2) > 0.85

    def test_deep_deflation_hurts(self):
        assert memcached_throughput(0.9) < 0.4

    def test_validation(self):
        with pytest.raises(SimulationError):
            memcached_throughput(1.0)

    def test_larger_miss_cost_amplifies_loss(self):
        mild = memcached_throughput(0.6, MemcachedConfig(miss_cost_ratio=2.0))
        harsh = memcached_throughput(0.6, MemcachedConfig(miss_cost_ratio=40.0))
        assert harsh < mild
