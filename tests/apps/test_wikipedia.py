"""Tests for the Wikipedia deflation harness (Figures 16/17 shape)."""

import pytest

from repro.apps.wikipedia import (
    FIG16_DEFLATION_PCT,
    WikipediaConfig,
    run_deflation_point,
    run_deflation_sweep,
)
from repro.errors import SimulationError


@pytest.fixture(scope="module")
def cfg():
    # Short runs keep the suite fast; shape assertions are robust to that.
    return WikipediaConfig(duration_s=6.0)


@pytest.fixture(scope="module")
def points(cfg):
    levels = (0, 50, 70, 90, 97)
    return {p.deflation_pct: p for p in run_deflation_sweep(cfg, levels, seed=11)}


class TestShape:
    def test_undeflated_mean_in_band(self, points):
        """Paper: ~0.3 s mean undeflated."""
        assert 0.15 < points[0].mean_rt < 0.6

    def test_flat_through_50(self, points):
        assert points[50].mean_rt < 1.3 * points[0].mean_rt

    def test_flat_through_70(self, points):
        assert points[70].mean_rt < 1.6 * points[0].mean_rt

    def test_degrades_at_90(self, points):
        assert points[90].mean_rt > 2 * points[0].mean_rt

    def test_served_high_until_70(self, points):
        for pct in (0, 50, 70):
            assert points[pct].served_fraction > 0.98

    def test_loss_appears_in_deep_deflation(self, points):
        """Short runs only expose drops at extreme deflation (the 15 s
        timeout needs time to bite); at 97% (1 core) the overload is ~6x
        capacity and loss is unavoidable."""
        assert points[97].served_fraction < 0.95

    def test_heavy_tail_undeflated(self, points):
        """Paper: p99 of 6.8 s against a 0.3 s mean."""
        assert points[0].percentiles[99] > 6 * points[0].mean_rt

    def test_utilization_grows_with_deflation(self, points):
        utils = [points[p].cpu_utilization for p in (0, 50, 70)]
        assert utils == sorted(utils)


class TestMechanics:
    def test_cores_mapping(self, cfg):
        assert cfg.cores_at(0) == 30
        assert cfg.cores_at(50) == 15
        assert cfg.cores_at(97) == pytest.approx(1.0, abs=0.11)

    def test_cores_never_below_one(self, cfg):
        assert cfg.cores_at(99.9) == 1.0

    def test_invalid_deflation(self, cfg):
        with pytest.raises(SimulationError):
            cfg.cores_at(100)

    def test_determinism(self, cfg):
        a = run_deflation_point(cfg, 50, seed=3)
        b = run_deflation_point(cfg, 50, seed=3)
        assert a.mean_rt == b.mean_rt

    def test_fig16_levels_match_paper(self):
        assert FIG16_DEFLATION_PCT == (0, 10, 20, 30, 40, 50, 60, 70, 80, 90, 97)
