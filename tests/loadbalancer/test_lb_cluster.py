"""Tests for the 3-replica web-cluster harness (Figure 19 shape)."""

import pytest

from repro.errors import SimulationError
from repro.loadbalancer.cluster import (
    FIG19_DEFLATION_PCT,
    WebClusterConfig,
    run_lb_sweep,
    run_web_cluster,
)


@pytest.fixture(scope="module")
def cfg():
    return WebClusterConfig(duration_s=12.0)


class TestShape:
    def test_equal_at_zero_deflation(self, cfg):
        v = run_web_cluster(cfg, 0, deflation_aware=False, seed=2)
        a = run_web_cluster(cfg, 0, deflation_aware=True, seed=2)
        # With no deflation both policies are (nearly) the same balancer.
        assert v.p90_rt == pytest.approx(a.p90_rt, rel=0.25)

    def test_aware_wins_at_high_deflation(self, cfg):
        """Figure 19: 15-40% lower tail latency at high deflation."""
        v = run_web_cluster(cfg, 70, deflation_aware=False, seed=2)
        a = run_web_cluster(cfg, 70, deflation_aware=True, seed=2)
        assert a.p90_rt < v.p90_rt
        assert a.mean_rt < v.mean_rt * 1.05  # mean lower or comparable

    def test_vanilla_degrades_with_deflation(self, cfg):
        lo = run_web_cluster(cfg, 0, deflation_aware=False, seed=3)
        hi = run_web_cluster(cfg, 80, deflation_aware=False, seed=3)
        assert hi.p90_rt > lo.p90_rt

    def test_aware_serves_more_under_overload(self, cfg):
        v = run_web_cluster(cfg, 80, deflation_aware=False, seed=4)
        a = run_web_cluster(cfg, 80, deflation_aware=True, seed=4)
        assert a.served_fraction >= v.served_fraction


class TestHarness:
    def test_sweep_structure(self, cfg):
        sweep = run_lb_sweep(cfg, levels_pct=(0, 40), seed=1)
        assert set(sweep) == {"vanilla", "deflation-aware"}
        assert [p.deflation_pct for p in sweep["vanilla"]] == [0, 40]

    def test_default_levels_match_paper(self):
        assert FIG19_DEFLATION_PCT == (0, 10, 20, 30, 40, 50, 60, 70, 80)

    def test_invalid_deflation(self, cfg):
        with pytest.raises(SimulationError):
            run_web_cluster(cfg, 100, deflation_aware=True)

    def test_config_validation(self):
        with pytest.raises(SimulationError):
            WebClusterConfig(n_deflatable=0)
