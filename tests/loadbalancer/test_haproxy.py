"""Tests for weighted round-robin and the deflation-aware balancer."""

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.controller import DeflationEvent
from repro.core.resources import ResourceVector
from repro.errors import SimulationError
from repro.loadbalancer.haproxy import (
    DeflationAwareBalancer,
    WeightedRoundRobin,
    deflation_aware_weights,
    vanilla_weights,
)


class TestSmoothWRR:
    def test_equal_weights_round_robin(self):
        wrr = WeightedRoundRobin({"a": 1.0, "b": 1.0})
        picks = wrr.pick_many(6)
        assert picks.count("a") == 3 and picks.count("b") == 3

    def test_proportional_distribution(self):
        wrr = WeightedRoundRobin({"a": 3.0, "b": 1.0})
        picks = Counter(wrr.pick_many(400))
        assert picks["a"] == 300 and picks["b"] == 100

    def test_smoothness_no_bursts(self):
        """Smooth WRR interleaves: with weights 2:1:1 the heavy backend
        never appears three times in a row."""
        wrr = WeightedRoundRobin({"a": 2.0, "b": 1.0, "c": 1.0})
        picks = wrr.pick_many(100)
        for i in range(len(picks) - 2):
            assert not (picks[i] == picks[i + 1] == picks[i + 2] == "a")

    def test_zero_weight_backend_skipped(self):
        wrr = WeightedRoundRobin({"a": 1.0, "b": 0.0})
        assert set(wrr.pick_many(10)) == {"a"}

    def test_weight_update_shifts_traffic(self):
        wrr = WeightedRoundRobin({"a": 1.0, "b": 1.0})
        wrr.pick_many(10)
        wrr.set_weight("a", 9.0)
        picks = Counter(wrr.pick_many(100))
        assert picks["a"] == 90

    def test_validation(self):
        with pytest.raises(SimulationError):
            WeightedRoundRobin({})
        with pytest.raises(SimulationError):
            WeightedRoundRobin({"a": -1.0})
        with pytest.raises(SimulationError):
            WeightedRoundRobin({"a": 0.0})
        wrr = WeightedRoundRobin({"a": 1.0})
        with pytest.raises(SimulationError):
            wrr.set_weight("ghost", 1.0)

    def test_all_weights_zero_at_pick_time(self):
        wrr = WeightedRoundRobin({"a": 1.0})
        wrr.set_weight("a", 0.0)
        with pytest.raises(SimulationError):
            wrr.pick()

    @settings(max_examples=30, deadline=None)
    @given(
        wa=st.integers(min_value=1, max_value=9),
        wb=st.integers(min_value=1, max_value=9),
    )
    def test_distribution_matches_weights_exactly_per_cycle(self, wa, wb):
        wrr = WeightedRoundRobin({"a": float(wa), "b": float(wb)})
        picks = Counter(wrr.pick_many(10 * (wa + wb)))
        assert picks["a"] == 10 * wa
        assert picks["b"] == 10 * wb


class TestDeflationAware:
    def _event(self, vm_id, old_cpu, new_cpu):
        return DeflationEvent(
            vm_id=vm_id,
            old_allocation=ResourceVector(old_cpu, 1024, 10, 10),
            new_allocation=ResourceVector(new_cpu, 1024, 10, 10),
        )

    def test_weights_track_allocations(self):
        lb = DeflationAwareBalancer({"web-a": 10.0, "web-b": 10.0})
        lb.on_deflation(self._event("web-a", 10, 4))
        assert lb.weights["web-a"] == 4.0
        assert lb.weights["web-b"] == 10.0

    def test_vm_mapping(self):
        lb = DeflationAwareBalancer({"web-a": 10.0})
        lb.map_vm("vm-77", "web-a")
        lb.on_deflation(self._event("vm-77", 10, 2))
        assert lb.weights["web-a"] == 2.0

    def test_unknown_vm_ignored(self):
        lb = DeflationAwareBalancer({"web-a": 10.0})
        lb.on_deflation(self._event("stranger", 10, 1))
        assert lb.weights["web-a"] == 10.0

    def test_map_unknown_backend(self):
        lb = DeflationAwareBalancer({"web-a": 10.0})
        with pytest.raises(SimulationError):
            lb.map_vm("vm-1", "ghost")

    def test_helpers(self):
        assert vanilla_weights(["x", "y"]) == {"x": 1.0, "y": 1.0}
        assert deflation_aware_weights({"x": 2.5}) == {"x": 2.5}
