"""Validation of the PS server against analytic queueing theory."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.queueing.mm import (
    erlang_c,
    mg1_ps_mean_sojourn,
    mmc_mean_sojourn,
    mmc_ps_mean_sojourn,
)
from repro.queueing.ps_server import PSServer
from repro.traces.workload_gen import make_request_trace


class TestAnalyticFormulas:
    def test_mg1_ps_formula(self):
        assert mg1_ps_mean_sojourn(50, 0.01) == pytest.approx(0.01 / 0.5)

    def test_mg1_ps_unstable_rejected(self):
        with pytest.raises(SimulationError):
            mg1_ps_mean_sojourn(100, 0.01)

    def test_erlang_c_single_server_equals_rho(self):
        assert erlang_c(1, 0.7) == pytest.approx(0.7)

    def test_erlang_c_validation(self):
        with pytest.raises(SimulationError):
            erlang_c(2, 2.5)
        with pytest.raises(SimulationError):
            erlang_c(0, 0.5)

    def test_mmc_reduces_to_mm1(self):
        # M/M/1 mean sojourn: 1/(mu - lambda).
        lam, es = 70.0, 0.01
        assert mmc_mean_sojourn(lam, es, 1) == pytest.approx(1.0 / (100 - 70))


class TestSimulatorValidation:
    """The simulator must reproduce known closed forms within Monte-Carlo
    noise.  Runs are sized for ~2-3% accuracy without being slow."""

    def test_mg1_ps_insensitivity(self):
        # Lognormal (cv=1.5) demands: M/G/1-PS mean depends only on the mean.
        wl = make_request_trace(70, 250, 0.01, cv=1.5, seed=3)
        res = PSServer(cores=1).simulate(wl)
        expected = mg1_ps_mean_sojourn(70, 0.01)
        assert res.mean_response == pytest.approx(expected, rel=0.08)

    def test_mmc_ps_mean(self):
        wl = make_request_trace(300, 120, 0.01, cv=1.0, seed=4)
        res = PSServer(cores=4).simulate(wl)
        expected = mmc_ps_mean_sojourn(300, 0.01, 4)
        assert res.mean_response == pytest.approx(expected, rel=0.10)

    def test_littles_law(self):
        wl = make_request_trace(50, 100, 0.01, cv=1.0, seed=5)
        res = PSServer(cores=1).simulate(wl)
        # L = lambda * W; mean jobs in system equals busy-time-weighted count.
        # We check the utilization form: busy fraction ~= rho.
        rho = 50 * 0.01
        assert res.station_utilization["server"] == pytest.approx(rho, rel=0.08)

    def test_overload_throughput_capped_by_capacity(self):
        # rho = 1.5 with timeouts: long-run goodput <= capacity/demand.
        wl = make_request_trace(150, 60, 0.01, cv=1.0, seed=6)
        res = PSServer(cores=1).simulate(wl, timeout_s=2.0)
        assert res.served_fraction < 0.8
        assert res.served_fraction > 0.4  # ~100/150 theoretical

    def test_extra_latency_adds_to_response(self):
        wl = make_request_trace(10, 60, 0.001, cv=1.0, seed=7)
        base = np.full(wl.n_requests, 0.5)
        res = PSServer(cores=4).simulate(wl, extra_latency=base)
        assert res.mean_response == pytest.approx(0.5 + 0.001, rel=0.1)

    def test_extra_latency_alignment_enforced(self):
        wl = make_request_trace(10, 10, 0.001, seed=8)
        with pytest.raises(SimulationError):
            PSServer(cores=1).simulate(wl, extra_latency=np.zeros(3))

    def test_utilization_helper(self):
        wl = make_request_trace(100, 50, 0.02, seed=9)
        assert PSServer(cores=4).utilization(wl) == pytest.approx(0.5, rel=0.1)

    def test_zero_cores_rejected(self):
        with pytest.raises(SimulationError):
            PSServer(cores=0)
