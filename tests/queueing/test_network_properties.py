"""Property-based tests on the PS network's conservation invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.queueing.network import Fork, PSNetwork, Visit


def _random_plan(rng: np.random.Generator, stations: list[str], depth: int = 0) -> tuple:
    """A random plan of visits and (shallow) forks."""
    steps = []
    for _ in range(int(rng.integers(1, 4))):
        if depth < 1 and rng.random() < 0.3:
            branches = tuple(
                _random_plan(rng, stations, depth + 1)
                for _ in range(int(rng.integers(2, 4)))
            )
            steps.append(Fork(branches=branches))
        else:
            steps.append(
                Visit(stations[int(rng.integers(len(stations)))], float(rng.exponential(0.01)))
            )
    return tuple(steps)


def _total_demand(plan) -> float:
    total = 0.0
    for step in plan:
        if isinstance(step, Visit):
            total += step.demand
        else:
            for branch in step.branches:
                total += _total_demand(branch)
    return total


def _critical_path(plan) -> float:
    """Lower bound on response time: demands along the longest chain."""
    total = 0.0
    for step in plan:
        if isinstance(step, Visit):
            total += step.demand
        else:
            total += max(_critical_path(b) for b in step.branches)
    return total


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2000))
def test_every_request_accounted_for(seed):
    """completed + dropped == arrived, with no deadline: all complete."""
    rng = np.random.default_rng(seed)
    stations = ["a", "b", "c"]
    net = PSNetwork({s: float(rng.uniform(0.5, 4.0)) for s in stations})
    plans = []
    t = 0.0
    for _ in range(int(rng.integers(1, 30))):
        t += float(rng.exponential(0.02))
        plan = _random_plan(rng, stations)
        plans.append(plan)
        net.offer(t, plan)
    res = net.run()
    assert res.n_arrived == len(plans)
    assert res.n_completed + res.n_dropped == res.n_arrived
    assert res.n_dropped == 0


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2000))
def test_response_time_at_least_critical_path(seed):
    """No request finishes faster than its critical-path demand (each task
    runs at <= 1 core)."""
    rng = np.random.default_rng(seed)
    stations = ["a", "b"]
    net = PSNetwork({s: 8.0 for s in stations})
    plans = []
    t = 0.0
    for _ in range(int(rng.integers(1, 15))):
        t += float(rng.exponential(0.05))
        plan = _random_plan(rng, stations)
        plans.append((t, plan))
        net.offer(t, plan)
    res = net.run()
    bounds = {arr: _critical_path(plan) for arr, plan in plans}
    for arrival, response in zip(res.arrival_times, res.response_times):
        assert response >= bounds[arrival] - 1e-9


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2000))
def test_work_conservation(seed):
    """Total busy time across stations equals total served demand (no
    timeouts: every offered CPU-second is eventually executed)."""
    rng = np.random.default_rng(seed)
    net = PSNetwork({"a": 2.0, "b": 1.0})
    offered = 0.0
    t = 0.0
    for _ in range(int(rng.integers(1, 25))):
        t += float(rng.exponential(0.02))
        plan = _random_plan(rng, ["a", "b"])
        offered += _total_demand(plan)
        net.offer(t, plan)
    res = net.run()
    busy = sum(res.station_busy_time.values())
    assert busy == pytest.approx(offered, rel=1e-6, abs=1e-9)


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2000),
    deadline_s=st.floats(min_value=0.05, max_value=2.0),
)
def test_deadlines_enforced(seed, deadline_s):
    """Every completed request met its deadline; every miss was dropped."""
    rng = np.random.default_rng(seed)
    net = PSNetwork({"a": 1.0})
    t = 0.0
    n = int(rng.integers(5, 40))
    for _ in range(n):
        t += float(rng.exponential(0.01))
        net.offer(t, (Visit("a", float(rng.exponential(0.05))),), deadline=deadline_s)
    res = net.run()
    assert res.n_completed + res.n_dropped == n
    assert np.all(res.response_times <= deadline_s + 1e-9)
