"""Tests for the processor-sharing network simulator."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.queueing.network import Fork, PSNetwork, Visit


class TestSingleStationBasics:
    def test_lone_request_takes_its_demand(self):
        net = PSNetwork({"s": 1.0})
        net.offer(0.0, (Visit("s", 2.0),))
        res = net.run()
        assert res.n_completed == 1
        assert res.response_times[0] == pytest.approx(2.0)

    def test_two_requests_share_one_core(self):
        net = PSNetwork({"s": 1.0})
        net.offer(0.0, (Visit("s", 1.0),))
        net.offer(0.0, (Visit("s", 1.0),))
        res = net.run()
        # Both progress at rate 1/2 until both finish at t=2.
        np.testing.assert_allclose(np.sort(res.response_times), [2.0, 2.0])

    def test_two_cores_no_sharing(self):
        net = PSNetwork({"s": 2.0})
        net.offer(0.0, (Visit("s", 1.0),))
        net.offer(0.0, (Visit("s", 1.0),))
        res = net.run()
        np.testing.assert_allclose(res.response_times, [1.0, 1.0])

    def test_single_task_capped_at_one_core(self):
        """A request cannot use more than one core even on a big server."""
        net = PSNetwork({"s": 16.0})
        net.offer(0.0, (Visit("s", 3.0),))
        res = net.run()
        assert res.response_times[0] == pytest.approx(3.0)

    def test_staggered_arrivals_exact_ps_schedule(self):
        # t=0: A (demand 2); t=1: B (demand 0.5).
        # A runs alone [0,1): 1 unit left. Then both at rate 1/2: B finishes
        # at t=2 (0.5 demand / 0.5 rate); A has 0.5 left, finishes at 2.5.
        net = PSNetwork({"s": 1.0})
        net.offer(0.0, (Visit("s", 2.0),))
        net.offer(1.0, (Visit("s", 0.5),))
        res = net.run()
        times = dict(zip(res.arrival_times, res.response_times))
        assert times[1.0] == pytest.approx(1.0)
        assert times[0.0] == pytest.approx(2.5)


class TestTandemAndFork:
    def test_tandem_stations(self):
        net = PSNetwork({"a": 1.0, "b": 1.0})
        net.offer(0.0, (Visit("a", 1.0), Visit("b", 2.0)))
        res = net.run()
        assert res.response_times[0] == pytest.approx(3.0)

    def test_fork_join_takes_max_branch(self):
        net = PSNetwork({"a": 4.0, "b": 4.0})
        plan = (
            Fork(branches=(
                (Visit("a", 1.0),),
                (Visit("b", 3.0),),
            )),
        )
        net.offer(0.0, plan)
        res = net.run()
        assert res.response_times[0] == pytest.approx(3.0)

    def test_post_join_continuation(self):
        net = PSNetwork({"a": 4.0, "b": 4.0, "c": 4.0})
        plan = (
            Fork(branches=((Visit("a", 1.0),), (Visit("b", 2.0),))),
            Visit("c", 1.0),
        )
        net.offer(0.0, plan)
        res = net.run()
        assert res.response_times[0] == pytest.approx(3.0)  # max(1,2) + 1

    def test_nested_forks(self):
        net = PSNetwork({"a": 8.0, "b": 8.0, "c": 8.0})
        inner = Fork(branches=((Visit("b", 1.0),), (Visit("c", 2.0),)))
        plan = (Fork(branches=((Visit("a", 0.5), inner), (Visit("a", 1.0),))),)
        net.offer(0.0, plan)
        res = net.run()
        # Branch 1: 0.5 + max(1, 2) = 2.5; branch 2: 1.0 -> join at 2.5.
        assert res.response_times[0] == pytest.approx(2.5)


class TestTimeouts:
    def test_timed_out_request_dropped(self):
        net = PSNetwork({"s": 1.0})
        net.offer(0.0, (Visit("s", 10.0),), deadline=1.0)
        res = net.run()
        assert res.n_dropped == 1
        assert res.n_completed == 0

    def test_drop_releases_capacity(self):
        """After the hog times out, the survivor speeds back up."""
        net = PSNetwork({"s": 1.0})
        net.offer(0.0, (Visit("s", 100.0),), deadline=1.0)
        net.offer(0.0, (Visit("s", 1.0),))
        res = net.run()
        # Survivor: shares until t=1 (progress 0.5), then alone; done at 1.5.
        assert res.response_times[0] == pytest.approx(1.5)
        assert res.n_dropped == 1

    def test_deadline_met_not_dropped(self):
        net = PSNetwork({"s": 1.0})
        net.offer(0.0, (Visit("s", 0.5),), deadline=1.0)
        res = net.run()
        assert res.n_dropped == 0


class TestAccounting:
    def test_served_fraction(self):
        net = PSNetwork({"s": 1.0})
        net.offer(0.0, (Visit("s", 10.0),), deadline=0.5)
        net.offer(0.0, (Visit("s", 0.1),))
        res = net.run()
        assert res.n_arrived == 2
        assert res.served_fraction == pytest.approx(0.5)

    def test_utilization_single_job(self):
        net = PSNetwork({"s": 2.0})
        net.offer(0.0, (Visit("s", 1.0),))
        res = net.run()
        # One core busy for 1s out of 2 cores over 1s.
        assert res.station_utilization["s"] == pytest.approx(0.5)
        assert res.station_busy_time["s"] == pytest.approx(1.0)

    def test_capacity_change_midrun_via_api(self):
        net = PSNetwork({"s": 2.0})
        net.set_capacity("s", 1.0)
        net.offer(0.0, (Visit("s", 1.0),))
        net.offer(0.0, (Visit("s", 1.0),))
        res = net.run()
        np.testing.assert_allclose(np.sort(res.response_times), [2.0, 2.0])


class TestValidation:
    def test_empty_network(self):
        with pytest.raises(SimulationError):
            PSNetwork({})

    def test_zero_capacity(self):
        with pytest.raises(SimulationError):
            PSNetwork({"s": 0.0})

    def test_empty_plan(self):
        net = PSNetwork({"s": 1.0})
        with pytest.raises(SimulationError):
            net.offer(0.0, ())

    def test_unknown_station_in_plan(self):
        net = PSNetwork({"s": 1.0})
        net.offer(0.0, (Visit("ghost", 1.0),))
        with pytest.raises(SimulationError):
            net.run()

    def test_percentile_of_empty_result(self):
        net = PSNetwork({"s": 1.0})
        res = net.run()
        assert np.isnan(res.percentile(99))
        assert res.served_fraction == 1.0
