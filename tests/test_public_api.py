"""Sanity checks on the package's public surface."""

import importlib

import pytest

import repro


class TestTopLevel:
    def test_version(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    @pytest.mark.parametrize(
        "module",
        [
            "repro.core",
            "repro.hypervisor",
            "repro.cluster",
            "repro.simulator",
            "repro.traces",
            "repro.feasibility",
            "repro.queueing",
            "repro.microsim",
            "repro.apps",
            "repro.loadbalancer",
            "repro.pricing",
            "repro.experiments",
        ],
    )
    def test_subpackages_import_clean(self, module):
        mod = importlib.import_module(module)
        for name in getattr(mod, "__all__", []):
            assert getattr(mod, name) is not None

    def test_exception_hierarchy(self):
        from repro.errors import (
            AdmissionRejected,
            DeflationError,
            PlacementError,
            ReproError,
        )

        assert issubclass(DeflationError, ReproError)
        assert issubclass(AdmissionRejected, PlacementError)
        assert issubclass(PlacementError, ReproError)
