"""Sanity checks on the package's public surface."""

import importlib

import pytest

import repro


class TestTopLevel:
    def test_version(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    @pytest.mark.parametrize(
        "module",
        [
            "repro.core",
            "repro.hypervisor",
            "repro.cluster",
            "repro.simulator",
            "repro.traces",
            "repro.feasibility",
            "repro.queueing",
            "repro.microsim",
            "repro.apps",
            "repro.loadbalancer",
            "repro.pricing",
            "repro.experiments",
            "repro.scenario",
        ],
    )
    def test_subpackages_import_clean(self, module):
        mod = importlib.import_module(module)
        for name in getattr(mod, "__all__", []):
            assert getattr(mod, name) is not None

    def test_exception_hierarchy(self):
        from repro.errors import (
            AdmissionRejected,
            DeflationError,
            PlacementError,
            RegistryError,
            ReproError,
            UnknownComponentError,
        )

        assert issubclass(DeflationError, ReproError)
        assert issubclass(AdmissionRejected, PlacementError)
        assert issubclass(PlacementError, ReproError)
        assert issubclass(UnknownComponentError, RegistryError)
        assert issubclass(RegistryError, ReproError)

    def test_scenario_api_exported(self):
        assert repro.Scenario is not None
        assert callable(repro.run_sweep) and callable(repro.run_scenario)


class TestLegacyRegistryShims:
    """The pre-registry dictionaries must keep working as mappings."""

    def test_policies_shim(self):
        from repro.core.deflation import POLICIES, get_policy

        assert {"proportional", "priority", "priority-eq3", "deterministic"} <= set(POLICIES)
        assert get_policy("proportional") is POLICIES["proportional"]
        assert dict(POLICIES)  # Mapping protocol: iterable, len, getitem
        assert len(POLICIES) >= 4
        assert "proportional" in POLICIES and "nope" not in POLICIES

    def test_strategies_shim(self):
        from repro.core.placement import STRATEGIES, CosineBestFit

        assert {"cosine-best-fit", "first-fit", "worst-fit"} <= set(STRATEGIES)
        assert isinstance(STRATEGIES["cosine-best-fit"], CosineBestFit)

    def test_pricing_models_shim(self):
        from repro.pricing.models import PRICING_MODELS, get_pricing

        assert set(PRICING_MODELS) >= {"static", "priority", "allocation"}
        assert get_pricing("static") is PRICING_MODELS["static"]
        for name, model in PRICING_MODELS.items():
            assert model.rate(0.5, 1.0) > 0

    def test_experiments_shim(self):
        from repro.experiments.registry import EXPERIMENTS, get_experiment

        assert {"fig03", "fig20", "fig21", "fig22"} <= set(EXPERIMENTS)
        assert get_experiment("fig20") is EXPERIMENTS["fig20"]
        assert callable(EXPERIMENTS["fig20"])

    def test_shims_are_views_over_one_registry(self):
        from repro.core.deflation import POLICIES
        from repro.registry import resolve

        assert POLICIES["priority"] is resolve("policy", "priority")
