"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.resources import ResourceVector
from repro.core.vm import VMSpec

#: Default seed for the randomized equivalence layer (docs/testing.md):
#: CI replays exactly this; override locally to probe fresh ground.
DEFAULT_FUZZ_SEED = 20260808


def pytest_addoption(parser):
    parser.addoption(
        "--repro-fuzz-seed",
        type=int,
        default=DEFAULT_FUZZ_SEED,
        help=(
            "seed for the randomized scenario generator "
            "(tests/strategies.py); the default is fixed so CI is "
            "deterministic — pass a fresh one to fuzz new scenarios"
        ),
    )


@pytest.fixture
def fuzz_seed(request) -> int:
    """The randomized-equivalence seed (``--repro-fuzz-seed``)."""
    return request.config.getoption("--repro-fuzz-seed")


@pytest.fixture
def server_capacity() -> ResourceVector:
    """The paper's server shape: 48 CPUs, 128 GB RAM."""
    return ResourceVector(cpu=48, memory_mb=128 * 1024, disk_mbps=2000, net_mbps=10_000)


@pytest.fixture
def small_vm() -> VMSpec:
    return VMSpec(
        capacity=ResourceVector(cpu=2, memory_mb=4096, disk_mbps=100, net_mbps=200),
        priority=0.4,
    )


@pytest.fixture
def medium_vm() -> VMSpec:
    return VMSpec(
        capacity=ResourceVector(cpu=8, memory_mb=16 * 1024, disk_mbps=200, net_mbps=500),
        priority=0.6,
    )


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)
