"""Tests for the pricing models (Section 5.2.2)."""

import pytest

from repro.errors import ReproError
from repro.pricing.models import (
    PRICING_MODELS,
    STATIC_DISCOUNT,
    AllocationPricing,
    PriorityPricing,
    StaticPricing,
    get_pricing,
)


class TestStatic:
    def test_default_discount(self):
        assert StaticPricing().rate(0.5, 0.5) == STATIC_DISCOUNT

    def test_ignores_priority_and_allocation(self):
        p = StaticPricing()
        assert p.rate(0.2, 1.0) == p.rate(0.9, 0.1)

    def test_revenue_scales_with_size_and_time(self):
        p = StaticPricing()
        assert p.revenue(4, 10, 0.5, 1.0) == pytest.approx(4 * 10 * 0.2)

    def test_validation(self):
        with pytest.raises(ReproError):
            StaticPricing(discount=0.0)
        with pytest.raises(ReproError):
            StaticPricing(discount=1.5)


class TestPriority:
    def test_price_equals_priority(self):
        p = PriorityPricing()
        assert p.rate(0.5, 1.0) == 0.5
        assert p.rate(0.8, 0.1) == 0.8

    def test_invalid_priority(self):
        with pytest.raises(ReproError):
            PriorityPricing().rate(0.0, 1.0)

    def test_higher_priority_pays_more(self):
        p = PriorityPricing()
        assert p.revenue(1, 1, 0.8, 1.0) > p.revenue(1, 1, 0.2, 1.0)


class TestAllocation:
    def test_full_allocation_matches_static(self):
        """The schemes coincide when nothing is deflated."""
        assert AllocationPricing().rate(0.5, 1.0) == StaticPricing().rate(0.5, 1.0)

    def test_half_allocation_half_price(self):
        p = AllocationPricing()
        assert p.rate(0.5, 0.5) == pytest.approx(0.5 * STATIC_DISCOUNT)

    def test_validation(self):
        with pytest.raises(ReproError):
            AllocationPricing(base_rate=0.0)


class TestRevenueGuards:
    def test_negative_inputs_rejected(self):
        p = StaticPricing()
        with pytest.raises(ReproError):
            p.revenue(-1, 1, 0.5, 1.0)
        with pytest.raises(ReproError):
            p.revenue(1, -1, 0.5, 1.0)
        with pytest.raises(ReproError):
            p.revenue(1, 1, 0.5, 1.5)


class TestRegistry:
    def test_contents(self):
        assert set(PRICING_MODELS) == {"static", "priority", "allocation"}

    def test_lookup(self):
        assert get_pricing("static").name == "static"
        with pytest.raises(ReproError):
            get_pricing("gold")
