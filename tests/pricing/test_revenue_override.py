"""A pricing model overriding revenue() must be honored by the simulator."""

import numpy as np

from repro.pricing.models import PricingModel
from repro.registry import register, unregister
from repro.simulator.cluster_sim import ClusterSimConfig, ClusterSimulator
from repro.traces.azure import AzureTraceConfig, synthesize_azure_trace


class FlatFeePricing(PricingModel):
    """Per-VM flat fee on top of the usage bill — overrides revenue()."""

    name = "flat-fee"
    FEE = 10.0

    def rate(self, priority, allocation_fraction):
        return 0.2

    def revenue(self, capacity_units, duration, priority, allocation_fraction):
        base = super().revenue(capacity_units, duration, priority, allocation_fraction)
        return base + self.FEE


def test_simulator_honors_revenue_override():
    register("pricing", "flat-fee")(FlatFeePricing)
    try:
        traces = synthesize_azure_trace(AzureTraceConfig(n_vms=120, seed=8))
        result = ClusterSimulator(traces, ClusterSimConfig(n_servers=6)).run()
        assert "flat-fee" in result.revenue
        # The flat fee prices every placed deflatable VM FEE above the
        # 0.2x-static usage bill (same rate as the stock static model).
        n_billed = round(
            (result.revenue["flat-fee"] - result.revenue["static"]) / FlatFeePricing.FEE
        )
        assert n_billed > 0
        expected = result.revenue["static"] + FlatFeePricing.FEE * n_billed
        assert result.revenue["flat-fee"] == np.float64(expected) or abs(
            result.revenue["flat-fee"] - expected
        ) < 1e-6
    finally:
        unregister("pricing", "flat-fee")
