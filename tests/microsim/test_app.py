"""Tests for the social-network application simulation."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.microsim.app import (
    MAX_CORES_PER_SERVICE,
    MEAN_DEMANDS,
    MIN_CORES_PER_SERVICE,
    REQUEST_MIX,
    SocialNetworkApp,
)
from repro.microsim.graph import deflatable_services, social_network_graph
from repro.queueing.network import Fork, Visit


@pytest.fixture(scope="module")
def app():
    return SocialNetworkApp(seed=3)


class TestCapacities:
    def test_undeflated_all_at_max(self, app):
        caps = app.capacities(0.0)
        assert all(c == MAX_CORES_PER_SERVICE for c in caps.values())

    def test_deflation_only_hits_deflatable(self, app):
        caps = app.capacities(0.5)
        defl = set(deflatable_services(social_network_graph()))
        for name, c in caps.items():
            if name in defl:
                assert c == pytest.approx(1.0)
            else:
                assert c == MAX_CORES_PER_SERVICE

    def test_floor_respected(self, app):
        caps = app.capacities(0.99)
        assert min(caps.values()) >= MIN_CORES_PER_SERVICE

    def test_invalid_deflation(self, app):
        with pytest.raises(SimulationError):
            app.capacities(1.0)

    def test_demands_cover_all_services(self):
        g = social_network_graph()
        assert set(MEAN_DEMANDS) == set(g.nodes)

    def test_request_mix_sums_to_one(self):
        assert sum(REQUEST_MIX.values()) == pytest.approx(1.0)


class TestPlans:
    def _stations_in(self, plan, acc):
        for step in plan:
            if isinstance(step, Visit):
                acc.add(step.station)
            elif isinstance(step, Fork):
                for branch in step.branches:
                    self._stations_in(branch, acc)

    def test_plans_reference_known_services(self, app):
        rng = np.random.default_rng(0)
        g = social_network_graph()
        for _ in range(50):
            stations = set()
            self._stations_in(app.sample_plan(rng), stations)
            assert stations <= set(g.nodes)

    def test_all_three_templates_sampled(self, app):
        rng = np.random.default_rng(1)
        kinds = set()
        for _ in range(200):
            stations = set()
            self._stations_in(app.sample_plan(rng), stations)
            if "compose-post" in stations:
                kinds.add("compose")
            elif "home-timeline" in stations:
                kinds.add("home")
            elif "user-timeline" in stations:
                kinds.add("user")
        assert kinds == {"compose", "home", "user"}


class TestSimulation:
    def test_latency_grows_with_deflation(self, app):
        lo = app.simulate(rate_per_s=300, duration_s=6, deflation=0.0, seed=2)
        hi = app.simulate(rate_per_s=300, duration_s=6, deflation=0.6, seed=2)
        assert hi.percentile(90) > lo.percentile(90)

    def test_served_everything_at_low_load(self, app):
        res = app.simulate(rate_per_s=100, duration_s=5, deflation=0.0, seed=3)
        assert res.served_fraction == 1.0

    def test_bottleneck_utilization_monotone(self, app):
        rhos = [app.bottleneck_utilization(500, d) for d in (0.0, 0.3, 0.5, 0.65)]
        assert rhos == sorted(rhos)

    def test_visit_rates_conserve_entry_rate(self, app):
        rates = app._expected_visit_rates(500.0)
        assert rates["nginx-web"] == pytest.approx(500.0)
