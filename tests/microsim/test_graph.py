"""Tests for the social-network service topology (paper Figure 15)."""

import networkx as nx

from repro.microsim.graph import (
    SOCIAL_NETWORK_SERVICES,
    ServiceTier,
    deflatable_services,
    services_by_tier,
    social_network_graph,
)


class TestTopology:
    def test_thirty_services(self):
        assert len(SOCIAL_NETWORK_SERVICES) == 30
        g = social_network_graph()
        assert g.number_of_nodes() == 30

    def test_tier_counts_match_paper(self):
        """3 frontend, 15 logic, 12 backend (Section 7.2)."""
        g = social_network_graph()
        tiers = services_by_tier(g)
        assert len(tiers[ServiceTier.FRONTEND]) == 3
        assert len(tiers[ServiceTier.LOGIC]) == 15
        backend = len(tiers[ServiceTier.BACKEND_CACHE]) + len(tiers[ServiceTier.BACKEND_DB])
        assert backend == 12

    def test_twenty_two_deflatable(self):
        """Frontends + logic + 4 memcached = 22 of 30 deflated."""
        g = social_network_graph()
        defl = deflatable_services(g)
        assert len(defl) == 22
        assert all("mongodb" not in s and "redis" not in s and s != "rabbitmq" for s in defl)

    def test_four_memcached_deflatable(self):
        g = social_network_graph()
        defl = deflatable_services(g)
        assert sum(1 for s in defl if s.startswith("memcached")) == 4

    def test_edges_reference_known_nodes(self):
        g = social_network_graph()
        for u, v in g.edges:
            assert u in g and v in g

    def test_frontends_are_sources(self):
        """Requests enter through frontends: no service calls into them."""
        g = social_network_graph()
        for name in services_by_tier(g)[ServiceTier.FRONTEND]:
            assert g.in_degree(name) == 0

    def test_databases_are_sinks(self):
        g = social_network_graph()
        for name in services_by_tier(g)[ServiceTier.BACKEND_DB]:
            assert g.out_degree(name) == 0

    def test_graph_is_acyclic(self):
        assert nx.is_directed_acyclic_graph(social_network_graph())

    def test_all_services_reachable_from_frontends(self):
        g = social_network_graph()
        frontends = services_by_tier(g)[ServiceTier.FRONTEND]
        reachable = set(frontends)
        for f in frontends:
            reachable |= nx.descendants(g, f)
        assert reachable == set(g.nodes)
