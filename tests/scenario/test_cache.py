"""SweepCache: memoized sweeps keyed on canonical scenario hashes."""

import dataclasses

import pytest

from repro.scenario import Scenario, SweepCache, cacheable, run_sweep, scenario_key
from repro.scenario.cache import _decode, _encode
from repro.traces.azure import AzureTraceConfig, synthesize_azure_trace


def base_scenario(**over):
    s = Scenario(name="cache-test").with_workload("azure", n_vms=60, seed=5)
    s = s.with_policy(over.pop("policy", "proportional"))
    s = s.with_servers(over.pop("n_servers", 4))
    for k, v in over.items():
        s = s._replace(**{k: v})
    return s


class TestKeys:
    def test_key_is_stable(self):
        assert scenario_key(base_scenario()) == scenario_key(base_scenario())

    def test_every_field_changes_the_key(self):
        base = base_scenario()
        variants = [
            base.with_policy("priority"),
            base.with_servers(5),
            base.with_overcommitment(0.3),
            base.with_workload("azure", n_vms=61, seed=5),
            base.with_workload("azure", n_vms=60, seed=6),
            base.with_server_shape(32, 64 * 1024),
            base.with_partitions(),
            base.with_min_fraction(0.2),
            base.with_admission("rigid"),
            base.with_scorer("most-available"),
            base.with_collectors("event-counts"),
            base.named("other-name"),
            base.with_engine("sharded"),
            base.with_topology(racks=2),
        ]
        keys = {scenario_key(v) for v in variants}
        assert len(keys) == len(variants), "every field must feed the key"
        assert scenario_key(base) not in keys

    def test_explicit_traces_not_cacheable(self):
        traces = synthesize_azure_trace(AzureTraceConfig(n_vms=10, seed=1))
        s = Scenario().with_traces(traces).with_servers(2)
        assert not cacheable(s)
        cache = SweepCache()
        assert cache.get(s) is None
        assert cache.skipped == 1


class TestRoundTrip:
    def test_encode_decode_preserves_tuples_and_numpy(self):
        import numpy as np

        payload = {
            "points": [(0.0, 1.5), (2.0, 0.25)],
            "arr": np.arange(3, dtype=np.float64),
            "count": np.int64(7),
            "flag": np.bool_(True),
            "nested": {"t": (1, (2, 3))},
        }
        decoded = _decode(_encode(payload))
        assert decoded["points"] == [(0.0, 1.5), (2.0, 0.25)]
        assert decoded["nested"] == {"t": (1, (2, 3))}
        assert decoded["count"] == 7 and decoded["flag"] is True
        assert decoded["arr"].tolist() == [0.0, 1.0, 2.0]

    @pytest.mark.parametrize("backend", ["memory", "disk"])
    def test_warm_cache_identical_to_cold_run(self, tmp_path, backend):
        cache = SweepCache(tmp_path / "sweeps" if backend == "disk" else None)
        grid = [
            base_scenario(policy=p).with_collectors("event-counts", "timeline")
            for p in ("proportional", "preemption")
        ]
        cold = run_sweep(grid, cache=cache)
        assert cache.hits == 0 and cache.misses == len(grid)
        warm = run_sweep(grid, cache=cache)
        assert cache.hits == len(grid)
        for c, w in zip(cold, warm):
            assert c.scenario == w.scenario
            assert c.sim == w.sim  # bit-identical, collectors included

    def test_disk_cache_survives_new_instance(self, tmp_path):
        path = tmp_path / "sweeps"
        grid = [base_scenario()]
        cold = run_sweep(grid, cache=SweepCache(path))
        fresh = SweepCache(path)
        assert len(fresh) == 1
        warm = run_sweep(grid, cache=fresh)
        assert fresh.hits == 1 and fresh.misses == 0
        assert warm[0].sim == cold[0].sim

    def test_corrupt_disk_entry_is_a_miss(self, tmp_path):
        path = tmp_path / "sweeps"
        cache = SweepCache(path)
        s = base_scenario()
        run_sweep([s], cache=cache)
        for f in path.glob("*.json"):
            f.write_text("{ not json")
        assert cache.get(s) is None

    def test_clear_empties_both_backends(self, tmp_path):
        for cache in (SweepCache(), SweepCache(tmp_path / "c")):
            run_sweep([base_scenario()], cache=cache)
            assert len(cache) == 1
            cache.clear()
            assert len(cache) == 0

    def test_clear_leaves_unrelated_files_alone(self, tmp_path):
        # Users may point the cache at a directory holding other JSON.
        bystander = tmp_path / "results.json"
        bystander.write_text("{}")
        cache = SweepCache(tmp_path)
        run_sweep([base_scenario()], cache=cache)
        assert len(cache) == 1
        cache.clear()
        assert len(cache) == 0
        assert bystander.exists(), "clear() must only delete its own entries"

    def test_tilde_paths_expand_to_home(self, tmp_path, monkeypatch):
        monkeypatch.setenv("HOME", str(tmp_path))
        cache = SweepCache("~/sweep-cache")
        assert cache.path == tmp_path / "sweep-cache"
        run_sweep([base_scenario()], cache=cache)  # first write creates it
        assert cache.path.is_dir() and len(cache) == 1

    def test_unwritable_path_degrades_to_misses(self, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("a file, not a directory")
        cache = SweepCache(blocker / "cache")  # parent is a file: unwritable
        rs = run_sweep([base_scenario()], cache=cache)  # must not raise
        assert len(rs) == 1
        assert len(cache) == 0 and cache.skipped >= 1


class TestQuarantine:
    """Corrupt on-disk entries are renamed ``<key>.corrupt``, not re-parsed
    forever (docs/robustness.md)."""

    def _seed_entry(self, tmp_path):
        path = tmp_path / "sweeps"
        cache = SweepCache(path)
        s = base_scenario()
        run_sweep([s], cache=cache)
        [entry] = path.glob("*.json")
        return path, cache, s, entry

    def test_corrupt_entry_is_quarantined_and_counted(self, tmp_path):
        path, cache, s, entry = self._seed_entry(tmp_path)
        entry.write_text("{ torn mid-write")
        assert cache.get(s) is None
        assert not entry.exists(), "the corrupt file must move aside"
        quarantined = path / f"{entry.stem}.corrupt"
        assert quarantined.exists(), "quarantined for post-mortem, not deleted"
        assert cache.corrupt == 1 and cache.stats()["corrupt"] == 1
        # The next lookup is a clean miss, not another quarantine.
        assert cache.get(s) is None and cache.corrupt == 1

    def test_shape_drift_is_quarantined_too(self, tmp_path):
        # Valid JSON whose payload no longer matches the dataclasses.
        import json

        path, cache, s, entry = self._seed_entry(tmp_path)
        payload = json.loads(entry.read_text())
        payload["sim"] = {"only": "junk"}
        entry.write_text(json.dumps(payload))
        assert cache.get(s) is None
        assert cache.corrupt == 1 and (path / f"{entry.stem}.corrupt").exists()

    def test_version_mismatch_is_a_clean_miss_not_corruption(self, tmp_path):
        import json

        path, cache, s, entry = self._seed_entry(tmp_path)
        payload = json.loads(entry.read_text())
        payload["version"] = 999
        entry.write_text(json.dumps(payload))
        assert cache.get(s) is None
        assert cache.corrupt == 0 and entry.exists()  # stale, not quarantined

    def test_len_and_clear_ignore_quarantined_files(self, tmp_path):
        path, cache, s, entry = self._seed_entry(tmp_path)
        entry.write_text("{ torn")
        assert cache.get(s) is None
        assert len(cache) == 0  # the .corrupt file is not an entry
        run_sweep([s], cache=cache)  # re-run refills the slot
        assert len(cache) == 1
        cache.clear()
        assert len(cache) == 0
        assert (path / f"{entry.stem}.corrupt").exists(), (
            "clear() must leave quarantined files for post-mortem"
        )

    def test_rerun_overwrites_the_quarantined_slot(self, tmp_path):
        path, cache, s, entry = self._seed_entry(tmp_path)
        entry.write_text("{ torn")
        assert cache.get(s) is None
        cold = run_sweep([s], cache=cache)
        warm = run_sweep([s], cache=cache)
        assert warm[0].sim == cold[0].sim
        assert cache.hits >= 1

    def test_failed_results_are_never_stored(self, tmp_path):
        from repro.scenario import ScenarioFailure, ScenarioResult

        cache = SweepCache(tmp_path / "sweeps")
        failed = ScenarioResult.from_failure(
            base_scenario(),
            ScenarioFailure(kind="crash", error_type="WorkerCrashed", message="boom"),
        )
        skipped_before = cache.skipped
        assert not cache.put(failed)
        assert cache.skipped == skipped_before + 1
        assert len(cache) == 0


class TestSweepIntegration:
    def test_mixed_hits_and_misses_keep_order(self):
        cache = SweepCache()
        first = base_scenario(policy="proportional")
        second = base_scenario(policy="priority")
        run_sweep([first], cache=cache)
        rs = run_sweep([second, first, second], cache=cache)
        assert [r.scenario.policy for r in rs] == ["priority", "proportional", "priority"]
        # `first` was warmed above (1 miss); both `second` entries are fresh
        # misses, since lookups happen before any miss executes.
        assert cache.hits == 1 and cache.misses == 3

    def test_uncacheable_scenarios_still_run(self):
        traces = synthesize_azure_trace(AzureTraceConfig(n_vms=30, seed=3))
        s = Scenario().with_traces(traces).with_servers(3)
        cache = SweepCache()
        rs = run_sweep([s, s], cache=cache)
        assert len(rs) == 2
        assert len(cache) == 0

    def test_numpy_workload_params_bypass_cache_transparently(self):
        import numpy as np

        s = (
            Scenario(name="np-params")
            .with_workload("azure", n_vms=np.int64(40), seed=np.int64(2))
            .with_servers(3)
        )
        cache = SweepCache()
        rs = run_sweep([s], cache=cache)  # must not raise
        assert len(rs) == 1 and rs[0].sim.n_vms == 40
        assert len(cache) == 0 and cache.skipped >= 1

    def test_disk_backed_experiment_cache_is_detached_not_wiped(self, tmp_path):
        from repro.experiments import cluster_sweep as cs

        original = cs.SWEEP_CACHE
        try:
            cs.SWEEP_CACHE = SweepCache(tmp_path)
            run_sweep([base_scenario()], cache=cs.SWEEP_CACHE)
            assert len(list(tmp_path.glob("*.json"))) == 1
            cs.cluster_sweep.cache_clear()
            # The persistent store survives; the module got a fresh
            # in-memory cache for subsequent cold runs.
            assert len(list(tmp_path.glob("*.json"))) == 1
            assert cs.SWEEP_CACHE.path is None and len(cs.SWEEP_CACHE) == 0
        finally:
            cs.SWEEP_CACHE = original

    def test_cached_experiment_sweep_is_stable(self):
        from repro.experiments.cluster_sweep import SWEEP_CACHE, cluster_sweep

        SWEEP_CACHE.clear()
        try:
            a = cluster_sweep("small")
            hits_before = SWEEP_CACHE.hits
            b = cluster_sweep("small")
            assert SWEEP_CACHE.hits > hits_before
            for policy in a.points:
                for pa, pb in zip(a.points[policy], b.points[policy]):
                    assert pa.result == pb.result
        finally:
            SWEEP_CACHE.clear()


class TestEngineField:
    def test_default_engine_elides_so_legacy_keys_are_unchanged(self):
        """A scenario spelling the default engine explicitly shares the
        key of one that never mentions it — pre-engine cache entries stay
        valid (docs/scenario-schema.md, "The engine field")."""
        base = base_scenario()
        assert "engine" not in base.to_dict()
        assert scenario_key(base.with_engine("cluster-sim")) == scenario_key(base)

    def test_non_default_engine_round_trips_and_changes_key(self):
        s = base_scenario()._replace(partitioned=True).with_engine("sharded")
        spec = s.to_dict()
        assert spec["engine"] == "sharded"
        assert Scenario.from_dict(spec) == s
        assert scenario_key(s) != scenario_key(s.with_engine("cluster-sim"))


class TestScenarioFieldCoverage:
    def test_new_scenario_fields_must_be_reviewed_for_caching(self):
        """If Scenario grows a field, its to_dict feeds the key (or this
        trips, forcing the author to decide)."""
        known = {
            "name",
            "workload",
            "traces",
            "failures",  # reviewed: serializes via to_dict, feeds the key
            "topology",  # reviewed: serializes via to_dict, feeds the key
            "policy",
            "n_servers",
            "overcommitment",
            "cores_per_server",
            "memory_per_server_mb",
            "partitioned",
            "n_partitions",
            "min_fraction",
            "admission",
            "scorer",
            "collectors",
            "engine",
            # reviewed: live state like `traces` — never serializes
            # (to_dict raises); keys the cache via snapshot.fingerprint()
            "checkpoint",
        }
        assert {f.name for f in dataclasses.fields(Scenario)} == known
