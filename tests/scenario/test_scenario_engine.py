"""Tests for the scenario engines."""

import pytest

from repro.errors import SimulationError
from repro.scenario import ClusterSimEngine, Scenario, resolve_workload, run_scenario
from repro.simulator.cluster_sim import (
    ClusterSimConfig,
    ClusterSimulator,
    servers_for_overcommitment,
)
from repro.traces.azure import AzureTraceConfig, synthesize_azure_trace

WORKLOAD = {"n_vms": 120, "seed": 9}


@pytest.fixture(scope="module")
def traces():
    return synthesize_azure_trace(AzureTraceConfig(**WORKLOAD))


class TestResolveWorkload:
    def test_declarative_workload_matches_direct_synthesis(self, traces):
        s = Scenario().with_workload("azure", **WORKLOAD)
        resolved = resolve_workload(s)
        assert len(resolved) == len(traces)
        assert [r.vm_id for r in resolved] == [r.vm_id for r in traces]

    def test_workload_cached_per_process(self):
        s = Scenario().with_workload("azure", **WORKLOAD)
        assert resolve_workload(s) is resolve_workload(s)

    def test_explicit_traces_passthrough(self, traces):
        assert resolve_workload(Scenario().with_traces(traces)) is traces

    def test_missing_workload_raises(self):
        with pytest.raises(SimulationError, match="no workload"):
            resolve_workload(Scenario())

    def test_non_vm_workload_rejected(self):
        s = Scenario().with_workload("alibaba", n_containers=5)
        with pytest.raises(SimulationError, match="VMTraceSet"):
            resolve_workload(s)


class TestClusterSimEngine:
    def test_matches_direct_simulator_exactly(self, traces):
        """The engine is construction glue only: results are bit-identical
        to driving ClusterSimulator by hand."""
        direct = ClusterSimulator(
            traces, ClusterSimConfig(n_servers=6, policy="priority")
        ).run()
        via_scenario = run_scenario(
            Scenario().with_traces(traces).with_policy("priority").with_servers(6)
        )
        assert via_scenario.sim == direct

    def test_overcommitment_resolves_paper_cluster_size(self, traces):
        target = 0.5
        result = run_scenario(
            Scenario().with_traces(traces).with_overcommitment(target)
        )
        assert result.n_servers == servers_for_overcommitment(traces, target)

    def test_unsized_scenario_defaults_to_zero_overcommitment(self, traces):
        result = run_scenario(Scenario().with_traces(traces))
        assert result.n_servers == servers_for_overcommitment(traces, 0.0)

    def test_build_exposes_simulator_for_surgery(self, traces):
        engine = ClusterSimEngine()
        sim = engine.build(Scenario().with_traces(traces).with_servers(4))
        assert isinstance(sim, ClusterSimulator)
        assert sim.config.n_servers == 4
        # build() does not run: no VM placed yet.
        assert not any(o.placed for o in sim.outcomes)

    def test_collectors_attach_through_scenario(self, traces):
        result = run_scenario(
            Scenario()
            .with_traces(traces)
            .with_servers(6)
            .with_collectors("event-counts", "rejection-log")
        )
        counts = result.collected["event-counts"]
        assert counts["admit"] == result.sim.n_placed
        assert counts["reject"] == len(result.collected["rejection-log"])

    def test_scenario_run_convenience(self, traces):
        result = Scenario().with_traces(traces).with_servers(6).run()
        assert result.scenario.n_servers == 6
        assert 0.0 <= result.failure_probability <= 1.0

    def test_result_properties_mirror_sim(self, traces):
        r = run_scenario(Scenario().with_traces(traces).with_servers(6))
        assert r.failure_probability == r.sim.failure_probability
        assert r.throughput_loss == r.sim.throughput_loss
        assert r.mean_deflation == r.sim.mean_deflation
        assert r.revenue == r.sim.revenue
        assert r.achieved_overcommitment == r.sim.overcommitment
