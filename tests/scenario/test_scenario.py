"""Tests for the declarative Scenario builder."""

import numpy as np
import pytest

from repro.core.vm import VMClass
from repro.errors import SimulationError, UnknownComponentError
from repro.scenario import Scenario
from repro.traces.schema import VMTraceRecord, VMTraceSet


def tiny_traces():
    return VMTraceSet(
        [
            VMTraceRecord(
                vm_id="a",
                vm_class=VMClass.INTERACTIVE,
                cores=4,
                memory_mb=8192,
                start_interval=0,
                cpu_util=np.full(10, 0.5),
            )
        ]
    )


class TestBuilder:
    def test_fluent_methods_return_new_scenarios(self):
        base = Scenario()
        modified = base.with_policy("priority").with_servers(40)
        assert base.policy == "proportional" and base.n_servers is None
        assert modified.policy == "priority" and modified.n_servers == 40

    def test_with_workload_builds_spec(self):
        s = Scenario().with_workload("azure", n_vms=100, seed=3)
        assert s.workload == {"source": "azure", "n_vms": 100, "seed": 3}

    def test_with_workload_validates_source(self):
        with pytest.raises(UnknownComponentError, match="azure"):
            Scenario().with_workload("not-a-workload")

    def test_component_setters_validate_names(self):
        with pytest.raises(UnknownComponentError):
            Scenario().with_scorer("psychic")
        with pytest.raises(UnknownComponentError):
            Scenario().with_admission("bouncer")
        with pytest.raises(UnknownComponentError):
            Scenario().with_collectors("nope")
        with pytest.raises(UnknownComponentError):
            Scenario().with_engine("warp")

    def test_servers_and_overcommitment_mutually_exclusive(self):
        s = Scenario().with_servers(10).with_overcommitment(0.4)
        assert s.n_servers is None and s.overcommitment == 0.4
        s2 = s.with_servers(8)
        assert s2.n_servers == 8 and s2.overcommitment is None
        with pytest.raises(SimulationError):
            Scenario(n_servers=4, overcommitment=0.2)

    def test_workload_and_traces_mutually_exclusive(self):
        with pytest.raises(SimulationError):
            Scenario(workload={"source": "azure"}, traces=tiny_traces())
        s = Scenario().with_workload("azure").with_traces(tiny_traces())
        assert s.workload is None and s.traces is not None

    def test_negative_overcommitment_rejected(self):
        with pytest.raises(SimulationError):
            Scenario().with_overcommitment(-0.1)

    def test_describe_mentions_key_knobs(self):
        s = Scenario(name="x").with_workload("azure").with_policy("priority").with_servers(7)
        text = s.describe()
        assert "x" in text and "azure" in text and "priority" in text and "7" in text


class TestDictRoundTrip:
    def test_roundtrip_preserves_equality(self):
        s = (
            Scenario(name="rt")
            .with_workload("azure", n_vms=50, seed=2)
            .with_policy("deterministic")
            .with_overcommitment(0.3)
            .with_partitions(4)
            .with_collectors("event-counts", "timeline")
            .with_scorer("most-available")
        )
        assert Scenario.from_dict(s.to_dict()) == s

    def test_to_dict_elides_defaults(self):
        d = Scenario(name="d").with_workload("azure").to_dict()
        assert d == {"name": "d", "workload": {"source": "azure"}}

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(SimulationError, match="unknown scenario keys"):
            Scenario.from_dict({"polcy": "priority"})

    def test_workload_spec_requires_source(self):
        with pytest.raises(SimulationError, match="source"):
            Scenario.from_dict({"workload": {"n_vms": 10}})

    def test_traces_do_not_serialize(self):
        with pytest.raises(SimulationError):
            Scenario().with_traces(tiny_traces()).to_dict()

    def test_to_dict_never_aliases_internal_state(self):
        s = Scenario().with_workload("azure", n_vms=5)
        s.to_dict()["workload"]["n_vms"] = 999
        assert s.workload["n_vms"] == 5

    def test_constructor_copies_workload_dict(self):
        spec = {"source": "azure", "n_vms": 5}
        s = Scenario(workload=spec)
        spec["n_vms"] = 999
        assert s.workload["n_vms"] == 5


class TestFailureFields:
    def test_with_failures_builds_spec(self):
        s = Scenario().with_failures("spot", rate=0.01, seed=3, response="kill")
        assert s.failures == {
            "model": "spot",
            "rate": 0.01,
            "seed": 3,
            "response": "kill",
        }

    def test_with_failures_validates_model_name(self):
        with pytest.raises(UnknownComponentError, match="spot"):
            Scenario().with_failures("asteroid")

    def test_with_failures_validates_params_eagerly(self):
        # A bad spec must fail at declaration time, not mid-sweep.
        with pytest.raises(SimulationError, match="rate"):
            Scenario().with_failures("spot", rate=-1)
        with pytest.raises(SimulationError, match="response"):
            Scenario().with_failures("spot", response="panic")
        with pytest.raises(TypeError):
            Scenario().with_failures("spot", warp_factor=9)

    def test_failure_spec_requires_model_key(self):
        with pytest.raises(SimulationError, match="model"):
            Scenario(failures={"rate": 0.01})

    def test_roundtrip_identity_with_failures(self):
        s = (
            Scenario(name="rt-fail")
            .with_workload("azure", n_vms=50, seed=2)
            .with_policy("priority")
            .with_overcommitment(0.4)
            .with_failures(
                "trace-schedule",
                events=[{"t": 5, "action": "revoke", "server": 0}],
                response="kill",
                restart_delay=2,
            )
        )
        assert Scenario.from_dict(s.to_dict()) == s

    def test_failure_free_to_dict_elides_failures(self):
        d = Scenario(name="d").with_workload("azure").to_dict()
        assert "failures" not in d

    def test_without_failures_drops_spec(self):
        s = Scenario().with_failures("spot", rate=0.01)
        assert s.without_failures().failures is None

    def test_failures_dict_never_aliased(self):
        spec = {"model": "spot", "rate": 0.01}
        s = Scenario(failures=spec)
        spec["rate"] = 9.9
        assert s.failures["rate"] == 0.01
        s.to_dict()["failures"]["rate"] = 9.9
        assert s.failures["rate"] == 0.01

    def test_nested_failure_payloads_never_aliased(self):
        # trace-schedule specs carry nested mutable events; a frozen
        # scenario's cache key must survive caller-side mutation of them.
        events = [{"t": 5, "action": "revoke", "server": 0}]
        s = Scenario().with_failures("trace-schedule", events=events)
        events[0]["t"] = 999
        assert s.failures["events"][0]["t"] == 5
        s.to_dict()["failures"]["events"][0]["t"] = 999
        assert s.failures["events"][0]["t"] == 5

    def test_describe_mentions_failures(self):
        s = Scenario(name="x").with_workload("azure").with_failures("spot")
        assert "failures=spot" in s.describe()


class TestSimConfig:
    def test_sim_config_carries_every_knob(self):
        s = (
            Scenario()
            .with_policy("priority")
            .with_server_shape(24, 64 * 1024)
            .with_partitions(3)
            .with_min_fraction(0.1)
            .with_admission("rigid")
            .with_scorer("most-available")
            .with_collectors("timeline")
        )
        cfg = s.sim_config(n_servers=5)
        assert cfg.n_servers == 5
        assert cfg.policy == "priority"
        assert cfg.cores_per_server == 24
        assert cfg.memory_per_server_mb == 64 * 1024
        assert cfg.partitioned and cfg.n_partitions == 3
        assert cfg.min_fraction == 0.1
        assert cfg.admission == "rigid"
        assert cfg.scorer == "most-available"
        assert cfg.collectors == ("timeline",)
