"""`fork_sweep`: one warm prefix, many what-if branches, cold-run bits.

The contract (docs/testing.md#snapshotresume-round-trip): forking ``base``
at ``t`` and sweeping the variants is **bit-identical** to a cold
``run_sweep`` of the same variants — sharing the prefix is an execution
optimization, never a science change.  Illegal forks (variants reshaping
the prefix, schedules firing before the boundary, contaminated prefixes
forked into different specs) are refused eagerly, never approximated.
"""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.failures import FailureInjector
from repro.runtime import SweepJournal
from repro.scenario import Scenario, SweepCache, fork_sweep, resolve_cluster, run_sweep


@pytest.fixture(scope="module")
def base():
    return (
        Scenario(name="fork-base")
        .with_workload("azure", n_vms=300, seed=2024)
        .with_overcommitment(0.5)
        .with_policy("proportional")
        .with_collectors("event-counts", "failure-log")
    )


@pytest.fixture(scope="module")
def boundary(base):
    traces, _ = resolve_cluster(base)
    return 0.4 * float(traces.horizon())


def what_if_branches(base, boundary):
    """A free prefix forked across declarative what-ifs: no failures at
    all, single- and double-revocation schedules, a kill-and-requeue
    branch, and a capacity dip — every event past the boundary."""

    def schedule(name, events, **extra):
        return base.named(name).with_failures("trace-schedule", events=events, **extra)

    return [
        base.named("branch-free"),
        schedule("branch-revoke-0", [{"t": boundary + 5.0, "server": 0, "action": "revoke"}]),
        schedule(
            "branch-revoke-2-3",
            [
                {"t": boundary + 5.0, "server": 2, "action": "revoke"},
                {"t": boundary + 20.0, "server": 3, "action": "revoke"},
            ],
        ),
        schedule(
            "branch-kill",
            [{"t": boundary + 5.0, "server": 0, "action": "revoke"}],
            response="kill",
            restart_delay=2,
        ),
        schedule(
            "branch-dip",
            [
                {
                    "t": boundary + 10.0,
                    "server": 1,
                    "action": "dip",
                    "scale": 0.5,
                    "duration": 12.0,
                }
            ],
        ),
    ]


def assert_results_identical(forked, cold) -> None:
    assert len(forked) == len(cold)
    for f, c in zip(forked, cold):
        assert f.sim == c.sim, f"{c.scenario.name}: fork diverged from cold"


class TestForkEqualsCold:
    def test_free_prefix_forked_across_regimes(self, base, boundary):
        branches = what_if_branches(base, boundary)
        assert_results_identical(
            fork_sweep(base, branches, at=boundary), run_sweep(branches)
        )

    def test_parallel_fork_identical(self, base, boundary):
        branches = what_if_branches(base, boundary)
        assert_results_identical(
            fork_sweep(base, branches, at=boundary, workers=2), run_sweep(branches)
        )

    def test_pure_resume_of_a_contaminated_prefix(self, base, boundary):
        """Variants keeping the base's exact failures+topology resume the
        stored stream verbatim — legal even when failures already landed
        before the boundary."""
        spotted = base.with_failures("spot", rate=0.006, seed=3, response="evacuate")
        branches = [spotted.named("resume-a"), spotted.named("resume-b")]
        assert_results_identical(
            fork_sweep(spotted, branches, at=boundary), run_sweep(branches)
        )

    def test_stochastic_what_ifs_fork_before_their_first_event(self, base):
        """Seeded random regimes (spot seeds, a correlated rack burst)
        fork legally at any boundary preceding every schedule's first
        event; the boundary here is derived from the schedules themselves
        so the test stays seed-robust."""
        branches = [
            base.named("spot-7").with_failures("spot", rate=0.004, seed=7, response="evacuate"),
            base.named("spot-11").with_failures("spot", rate=0.004, seed=11, response="evacuate"),
            base.named("racks")
            .with_topology(racks=4)
            .with_failures("correlated-spot", rate=0.004, seed=7, response="evacuate"),
        ]
        traces, n_servers = resolve_cluster(base)
        horizon = float(traces.horizon())
        first_event = min(
            ev.time
            for b in branches
            for ev in FailureInjector.from_spec(b.failures, topology=b.topology).schedule(
                n_servers, horizon
            )
        )
        at = 0.9 * first_event
        assert at > 0.0
        assert_results_identical(fork_sweep(base, branches, at=at), run_sweep(branches))

    def test_fork_composes_with_cache(self, base, boundary, tmp_path):
        branches = what_if_branches(base, boundary)
        cache = SweepCache(tmp_path / "cache")
        first = fork_sweep(base, branches, at=boundary, cache=cache)
        assert len(cache) == len(branches)
        warm_cache = SweepCache(tmp_path / "cache")
        again = fork_sweep(base, branches, at=boundary, cache=warm_cache)
        assert warm_cache.stats()["hits"] == len(branches)
        assert_results_identical(again, first)
        assert_results_identical(first, run_sweep(branches))

    def test_fork_composes_with_journal(self, base, boundary, tmp_path):
        """Checkpointed scenarios journal like any other: losing entries
        mid-sweep and resuming reproduces the cold bits."""
        branches = what_if_branches(base, boundary)
        first = fork_sweep(base, branches, at=boundary, journal=tmp_path / "journal")
        assert len(SweepJournal(tmp_path / "journal")) == len(branches)
        (tmp_path / "journal" / "entry-000001.pkl").unlink()
        resumed = fork_sweep(
            base, branches, at=boundary, journal=SweepJournal(tmp_path / "journal")
        )
        assert_results_identical(resumed, first)


class TestForkRefusals:
    def test_non_positive_boundary(self, base):
        with pytest.raises(SimulationError, match="boundary"):
            fork_sweep(base, [base.named("x")], at=0.0)

    def test_no_variants(self, base):
        with pytest.raises(SimulationError, match="at least one"):
            fork_sweep(base, [], at=10.0)

    def test_sharded_base_engine(self, base):
        sharded = base.with_partitions().with_engine("sharded")
        with pytest.raises(SimulationError, match="cluster-sim"):
            fork_sweep(sharded, [sharded.named("x")], at=10.0)

    def test_variant_reshaping_the_prefix(self, base):
        with pytest.raises(SimulationError, match="policy"):
            fork_sweep(base, [base.with_policy("priority")], at=10.0)
        with pytest.raises(SimulationError, match="overcommitment"):
            fork_sweep(base, [base.with_overcommitment(0.2)], at=10.0)

    def test_variant_already_checkpointed(self, base, boundary):
        from repro.scenario import ClusterSimEngine

        sim = ClusterSimEngine().build(base)
        sim.run_until(boundary)
        tainted = base.with_checkpoint(sim.snapshot())
        with pytest.raises(SimulationError, match="already carries a checkpoint"):
            fork_sweep(base, [tainted], at=boundary)
        with pytest.raises(SimulationError, match="cold base"):
            fork_sweep(tainted, [base.named("x")], at=boundary)

    def test_variant_schedule_firing_before_the_boundary(self, base, boundary):
        early = base.named("early").with_failures(
            "trace-schedule",
            events=[{"t": boundary / 2, "server": 0, "action": "revoke"}],
        )
        with pytest.raises(SimulationError, match="before the boundary"):
            fork_sweep(base, [early], at=boundary)

    def test_contaminated_prefix_forked_into_a_different_spec(self, base, boundary):
        """Failures landed before the boundary under the base's spec: the
        prefix is not shareable with a *different* regime."""
        contaminated = base.with_failures(
            "trace-schedule",
            events=[{"t": boundary / 2, "server": 0, "action": "revoke"}],
        )
        diverging = base.named("what-if").with_failures(
            "trace-schedule",
            events=[{"t": boundary + 5.0, "server": 1, "action": "revoke"}],
        )
        with pytest.raises(SimulationError, match="before the boundary"):
            fork_sweep(contaminated, [diverging], at=boundary)
