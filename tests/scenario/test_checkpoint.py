"""`Scenario.with_checkpoint`: the declarative face of SimSnapshot.

A checkpoint is live simulator state riding on an otherwise-declarative
scenario: it pickles across sweep workers but never serializes to the
wire format, keys the sweep cache through its own fingerprint, and only
the engine it froze (``cluster-sim``) accepts it.  Restore refusals are
loud and specific — a snapshot silently restored into the wrong
configuration would fake bit-equivalence instead of upholding it.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.errors import SimulationError
from repro.scenario import (
    ClusterSimEngine,
    Scenario,
    SimSnapshot,
    SweepCache,
    cacheable,
    resolve_cluster,
    run_sweep,
    scenario_key,
)
from repro.simulator.components import EventCountCollector
from repro.simulator.sharded import plan_shards


@pytest.fixture(scope="module")
def base():
    return (
        Scenario(name="ckpt")
        .with_workload("azure", n_vms=200, seed=31)
        .with_overcommitment(0.4)
        .with_policy("proportional")
        .with_collectors("event-counts")
    )


@pytest.fixture(scope="module")
def boundary(base):
    traces, _ = resolve_cluster(base)
    return 0.4 * float(traces.horizon())


def snap_at(scenario, at) -> SimSnapshot:
    sim = ClusterSimEngine().build(scenario)
    sim.run_until(at)
    return sim.snapshot()


@pytest.fixture(scope="module")
def snapshot(base, boundary):
    return snap_at(base, boundary)


class TestBuilder:
    def test_with_checkpoint_round_trip(self, base, snapshot):
        warm = base.with_checkpoint(snapshot)
        assert warm.checkpoint is snapshot
        assert base.checkpoint is None  # builder copies, never mutates
        assert warm.without_checkpoint() == base

    def test_rejects_non_snapshots(self, base):
        with pytest.raises(SimulationError, match="SimSnapshot"):
            base.with_checkpoint({"at": 10.0})

    def test_describe_names_the_boundary(self, base, snapshot):
        text = base.with_checkpoint(snapshot).describe()
        assert f"checkpoint@t={snapshot.at:g}" in text

    def test_to_dict_refuses(self, base, snapshot):
        with pytest.raises(SimulationError, match="without_checkpoint"):
            base.with_checkpoint(snapshot).to_dict()
        # the declarative remainder still serializes
        assert Scenario.from_dict(base.to_dict()) == base

    def test_from_dict_rejects_a_checkpoint_key(self, base):
        spec = dict(base.to_dict(), checkpoint="anything")
        with pytest.raises(SimulationError, match="checkpoint"):
            Scenario.from_dict(spec)


class TestCacheKeys:
    def test_checkpoint_changes_the_key(self, base, snapshot):
        assert cacheable(base.with_checkpoint(snapshot))
        assert scenario_key(base.with_checkpoint(snapshot)) != scenario_key(base)

    def test_different_prefixes_never_collide(self, base, boundary, snapshot):
        other = snap_at(base, boundary / 2)
        assert scenario_key(base.with_checkpoint(snapshot)) != scenario_key(
            base.with_checkpoint(other)
        )

    def test_same_snapshot_same_key(self, base, boundary, snapshot):
        rebuilt = snap_at(base, boundary)  # independent build, same bits
        assert scenario_key(base.with_checkpoint(snapshot)) == scenario_key(
            base.with_checkpoint(rebuilt)
        )

    def test_disk_cache_round_trip(self, base, boundary, snapshot, tmp_path):
        """A disk hit returns the cold bits; the snapshot itself does not
        serialize, so the hit's scenario carries ``checkpoint is None``."""
        warm = base.with_checkpoint(snapshot)
        cold = base.run()
        cache = SweepCache(tmp_path / "cache")
        first = run_sweep([warm], cache=cache)
        assert first[0].sim == cold.sim
        hit = SweepCache(tmp_path / "cache").get(warm)
        assert hit is not None
        assert hit.sim == cold.sim
        assert hit.scenario.checkpoint is None
        assert hit.scenario == warm.without_checkpoint()

    def test_memory_cache_returns_the_live_result(self, base, snapshot):
        warm = base.with_checkpoint(snapshot)
        cache = SweepCache()
        first = run_sweep([warm], cache=cache)
        assert cache.get(warm).sim == first[0].sim


class TestEngineSurface:
    def test_engine_build_resumes_from_the_checkpoint(self, base, boundary, snapshot):
        assert base.with_checkpoint(snapshot).run().sim == base.run().sim

    def test_sharded_engine_refuses_checkpoints(self, base, snapshot):
        scenario = base.with_partitions().with_checkpoint(snap_at(base.with_partitions(), 20.0))
        with pytest.raises(SimulationError, match="flat simulator"):
            plan_shards(scenario.with_engine("sharded"))


class TestRestoreRefusals:
    def test_unknown_version(self, base, snapshot):
        future = dataclasses.replace(snapshot, version=99)
        sim = ClusterSimEngine().build(base)
        with pytest.raises(SimulationError, match="v99"):
            sim.restore(future)

    def test_not_a_snapshot(self, base):
        sim = ClusterSimEngine().build(base)
        with pytest.raises(SimulationError, match="not a SimSnapshot"):
            sim.restore({"version": 1})

    def test_config_mismatch(self, base, snapshot):
        sim = ClusterSimEngine().build(base.with_min_fraction(0.10))
        with pytest.raises(SimulationError, match="config mismatch"):
            sim.restore(snapshot)

    def test_trace_count_mismatch(self, base, snapshot):
        other = base.with_workload("azure", n_vms=150, seed=31).with_servers(
            snapshot.config.n_servers
        )
        sim = ClusterSimEngine().build(other)
        with pytest.raises(SimulationError, match="VMs"):
            sim.restore(snapshot)

    def test_collector_set_mismatch(self, base, boundary, snapshot):
        # Collectors are config, so a differing set is a config mismatch.
        bare = base.with_collectors()
        sim = ClusterSimEngine().build(bare.with_servers(snapshot.config.n_servers))
        with pytest.raises(SimulationError, match="config mismatch"):
            sim.restore(snapshot)

    def test_open_stream_refused(self, base, boundary, snapshot):
        sim = ClusterSimEngine().build(base)
        sim.run_until(boundary / 2)
        with pytest.raises(SimulationError, match="fresh"):
            sim.restore(snapshot)

    def test_opted_out_collector_refuses_capture(self, base, boundary, monkeypatch):
        """`snapshottable = False` (the lint-enforced opt-out) fails the
        snapshot eagerly, naming the collector."""
        monkeypatch.setattr(EventCountCollector, "snapshottable", False)
        sim = ClusterSimEngine().build(base)
        sim.run_until(boundary)
        with pytest.raises(SimulationError, match="event-counts"):
            sim.snapshot()
