"""Tests for parallel scenario sweeps.

The acceptance bar: the parallel path must reproduce the serial path
bit-identically (same floats, same ordering) on Figure 20's sweep grid.
"""

import pytest

from repro.experiments.cluster_sweep import OC_LEVELS_SMALL, cluster_sweep
from repro.scenario import ResultSet, Scenario, run_sweep
from repro.simulator.metrics import DEFAULT_POLICIES, overcommitment_sweep
from repro.traces.azure import AzureTraceConfig, synthesize_azure_trace


@pytest.fixture(scope="module")
def small_grid():
    base = Scenario(name="sweep-test").with_workload("azure", n_vms=150, seed=4)
    return [
        base.with_policy(policy).with_overcommitment(oc)
        for policy in ("proportional", "preemption")
        for oc in (0.0, 0.5)
    ]


class TestRunSweep:
    def test_serial_preserves_order(self, small_grid):
        results = run_sweep(small_grid)
        assert isinstance(results, ResultSet)
        assert [r.scenario for r in results] == small_grid

    def test_parallel_bit_identical_to_serial(self, small_grid):
        serial = run_sweep(small_grid)
        parallel = run_sweep(small_grid, workers=4)
        assert len(serial) == len(parallel) == len(small_grid)
        for s, p in zip(serial, parallel):
            assert s.scenario == p.scenario
            assert s.sim == p.sim  # full dataclass equality: every float

    def test_filter_and_series(self, small_grid):
        results = run_sweep(small_grid)
        prop = results.filter(policy="proportional")
        assert len(prop) == 2
        series = prop.series("overcommitment", "failure_probability")
        assert [x for x, _ in series] == [0.0, 0.5]
        with pytest.raises(Exception, match="unknown scenario attribute"):
            results.filter(polcy="proportional")

    def test_single_scenario_skips_pool(self, small_grid):
        results = run_sweep(small_grid[:1], workers=8)
        assert len(results) == 1


class TestFigure20Equivalence:
    """``run_sweep(workers=4)`` reproduces Figure 20's sweep bit-identically."""

    def test_fig20_grid_parallel_equals_serial(self):
        serial = cluster_sweep("small")  # the grid Figure 20 is drawn from
        traces = synthesize_azure_trace(AzureTraceConfig(n_vms=500, seed=31))
        parallel = overcommitment_sweep(
            traces, levels=OC_LEVELS_SMALL, workers=4
        )
        assert set(parallel.points) == set(DEFAULT_POLICIES)
        for policy in DEFAULT_POLICIES:
            assert serial.failure_probabilities(policy) == parallel.failure_probabilities(policy)
            for sp, pp in zip(serial.points[policy], parallel.points[policy]):
                assert sp.n_servers == pp.n_servers
                assert sp.result == pp.result  # bit-identical metrics
