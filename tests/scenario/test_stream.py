"""`ScenarioStream`: bounded-memory streaming, still the cold run's bits.

Compaction finalizes the metric terms of VMs that ended behind the
boundary and drops their allocation-history rows; the final result must
nevertheless equal a one-shot ``scenario.run()`` exactly — compaction is
a memory optimization, not an approximation.
"""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.scenario import ClusterSimEngine, Scenario, ScenarioStream, resolve_cluster


@pytest.fixture(scope="module")
def scenario():
    return (
        Scenario(name="stream")
        .with_workload("azure", n_vms=300, seed=2024)
        .with_overcommitment(0.5)
        .with_policy("proportional")
        .with_collectors("event-counts")
    )


@pytest.fixture(scope="module")
def failing(scenario):
    return scenario.with_failures("spot", rate=0.004, seed=7, response="kill", restart_delay=2)


@pytest.fixture(scope="module")
def horizon(scenario):
    traces, _ = resolve_cluster(scenario)
    return float(traces.horizon())


def steps(horizon, n=10):
    return [horizon * (i + 1) / n for i in range(n)]


class TestStreaming:
    def test_stepped_run_equals_one_shot(self, scenario, horizon):
        stream = ScenarioStream(scenario)
        for boundary in steps(horizon):
            tick = stream.advance(boundary)
            assert tick.t == boundary
        assert stream.result().sim == scenario.run().sim

    def test_compacted_stream_equals_one_shot(self, failing, horizon):
        stream = ScenarioStream(failing, compact=True)
        for boundary in steps(horizon):
            stream.advance(boundary)
        assert stream.result().sim == failing.run().sim

    def test_compact_lag_leaves_a_grace_window_and_the_bits(self, failing, horizon):
        stream = ScenarioStream(failing, compact=True, compact_lag=5.0)
        for boundary in steps(horizon, n=20):
            stream.advance(boundary)
        assert stream.result().sim == failing.run().sim

    def test_compaction_bounds_history_memory(self, scenario, horizon):
        """The bounded-memory claim itself: a compacting stream's peak
        history footprint stays well under the uncompacted total."""
        plain = ScenarioStream(scenario)
        for boundary in steps(horizon):
            uncompacted_total = plain.advance(boundary).history_rows

        compacted = ScenarioStream(scenario, compact=True)
        peak = finalized = 0
        for boundary in steps(horizon):
            tick = compacted.advance(boundary)
            peak = max(peak, tick.history_rows)
            finalized = tick.finalized_vms
        assert finalized > 0
        assert peak < uncompacted_total / 2
        assert compacted.result().sim == plain.result().sim

    def test_ticks_report_progress(self, scenario, horizon):
        stream = ScenarioStream(scenario)
        assert stream.at == 0.0
        tick = stream.advance(horizon / 4)
        assert stream.at == horizon / 4
        assert tick.committed_cores > 0.0
        assert tick.history_rows > 0
        assert tick.finalized_vms == 0  # not compacting

    def test_snapshot_mid_stream_feeds_with_checkpoint(self, failing, horizon):
        stream = ScenarioStream(failing)
        stream.advance(horizon / 3)
        snap = stream.snapshot()
        assert snap.at == horizon / 3
        assert failing.with_checkpoint(snap).run().sim == failing.run().sim

    def test_result_is_idempotent(self, scenario):
        stream = ScenarioStream(scenario)
        assert stream.result() is stream.result()


class TestStreamRefusals:
    def test_sharded_scenarios_do_not_stream(self, scenario):
        with pytest.raises(SimulationError, match="cluster-sim"):
            ScenarioStream(scenario.with_partitions().with_engine("sharded"))

    def test_negative_lag(self, scenario):
        with pytest.raises(SimulationError, match="compact_lag"):
            ScenarioStream(scenario, compact_lag=-1.0)

    def test_advance_after_finish(self, scenario):
        stream = ScenarioStream(scenario)
        stream.result()
        with pytest.raises(SimulationError, match="finished"):
            stream.advance(10.0)
        with pytest.raises(SimulationError, match="finished"):
            stream.snapshot()

    def test_advance_backwards(self, scenario, horizon):
        stream = ScenarioStream(scenario)
        stream.advance(horizon / 2)
        with pytest.raises(SimulationError, match="backward"):
            stream.advance(horizon / 4)

    def test_compacting_beyond_the_boundary_refused(self, scenario, horizon):
        sim = ClusterSimEngine().build(scenario)
        sim.run_until(horizon / 4)
        with pytest.raises(SimulationError, match="boundary"):
            sim.compact_history(horizon / 2)
